//! Deterministic simulation of the serving path.
//!
//! A single `u64` seed expands into a full serving **script** — an
//! interleaving of influence queries, version-pinned queries (some
//! deliberately stale), graph delta ops, and malformed lines — via
//! [`generate_script`]. The script then drives two independent
//! executions:
//!
//! - [`run_concurrent`] feeds it through the *real* serving stack:
//!   [`subsim_delta::serve_queries`] over a [`ConcurrentDeltaIndex`],
//!   with reader, worker, and collector threads exactly as the CLI runs
//!   them (one query worker, so answers are a pure function of the
//!   script — delta lines are already a barrier in the loop).
//! - [`run_sequential_model`] replays the same lines against the plain
//!   sequential [`DeltaIndex`] — the model whose semantics the
//!   concurrent stack promises to match bit-for-bit.
//! - [`run_sharded`] swaps the index for an N-shard
//!   [`ShardedDeltaIndex`], model-checking that chunk-ownership sharding
//!   leaves a serving session a pure function of its input for every
//!   shard count ([`check_seed_sharded`]).
//!
//! Both produce a [`SimOutcome`]: one canonical record per script line
//! (`ok <seeds>`, `applied v<version> regen=<sets>`, `stale ...`,
//! `malformed`, ...). [`check_seed`] asserts the two outcomes are equal
//! and reports the seed plus the first diverging line on failure, so any
//! counterexample replays bit-identically from the printed seed.
//!
//! Every generated line is textually unique (ε and p carry a per-step
//! jitter in their last digits), which is what lets the concurrent
//! run's events be re-associated with script lines unambiguously.

use rand::Rng;
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;
use subsim_delta::{
    parse_query, serve_queries, ConcurrentDeltaIndex, DeltaError, DeltaIndex, GraphDelta,
    LineError, ServeError, ServeEvent, ServeIndex, ServeSink,
};
use subsim_diffusion::RrStrategy;
use subsim_graph::{Graph, NodeId};
use subsim_index::IndexConfig;
use subsim_serve::ShardedDeltaIndex;

/// The `δ` every simulated query uses.
const SIM_DELTA: f64 = 0.1;

/// Index configuration shared by the concurrent run and the model: the
/// pool must be a pure function of its size for the comparison to be
/// exact, which holds for any fixed `(strategy, seed, chunk_size)`.
fn base_config(strategy: RrStrategy) -> IndexConfig {
    IndexConfig::new(strategy)
        .seed(42)
        .chunk_size(32)
        .threads(2)
}

/// The default simulated workload: subsim-style IC.
fn sim_config() -> IndexConfig {
    base_config(RrStrategy::SubsimIc)
}

/// [`sim_config`] under Linear Threshold: the pool grows chain-shaped
/// LT RR sets through the identical serving machinery. Purity of the
/// pool in its size holds exactly as for IC — the LT sampler is seeded
/// per chunk the same way.
fn sim_config_lt() -> IndexConfig {
    base_config(RrStrategy::Lt)
}

/// [`sim_config`] with the sentinel tier enabled: chunks past the
/// warmup prefix run through the stopped-RR wrapper over a 2-node
/// sentinel set. Pool content stays a pure function of its size, so the
/// model check carries over unchanged.
fn sim_config_sentinel() -> IndexConfig {
    sim_config().sentinels(2)
}

/// [`sim_config`] with the sketched validation tier enabled: the exact
/// R₂ arena is displaced by per-node HLL count-distinct sketches at
/// register precision 6. Sketch content is a pure function of pool
/// size (deterministic hashing, no sampled state), so the model check
/// carries over unchanged.
fn sim_config_sketch() -> IndexConfig {
    sim_config().sketch(6)
}

/// [`sim_config_lt`] with the sentinel tier enabled under LT.
fn sim_config_lt_sentinel() -> IndexConfig {
    sim_config_lt().sentinels(2)
}

/// [`sim_config_lt`] with the sketched validation tier enabled under LT.
fn sim_config_lt_sketch() -> IndexConfig {
    sim_config_lt().sketch(6)
}

/// Sets every sentinel-enabled run pre-grows to before serving: past
/// the 4-chunk warmup boundary, so the sentinel tier is active (and
/// identically selected on every stack) before the first scripted line.
const SENTINEL_WARM_SETS: usize = 320;

/// Sets every sketch-enabled run pre-grows to before serving, so the
/// first scripted query certifies (or ladders) from a populated sketch
/// rather than growing from zero.
const SKETCH_WARM_SETS: usize = 320;

/// What one script line did, in canonical text form (identical between
/// the concurrent run and the sequential model when behavior matches).
pub type SimStep = String;

/// The outcome of one simulated serving session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// One canonical record per script line, in script order.
    pub records: Vec<SimStep>,
    /// Graph version after the session.
    pub final_version: u64,
}

/// Expands `seed` into a serving script of `steps` lines over `g`:
/// ~55% plain queries, ~15% queries pinned to the then-current version,
/// ~5% deliberately stale pins, ~20% valid delta ops (insert / delete /
/// reweight, tracked against the evolving edge set so they stay
/// applicable), ~5% malformed lines. Pure function of `(g, seed, steps)`.
pub fn generate_script(g: &Graph, seed: u64, steps: usize) -> Vec<String> {
    let mut rng = subsim_sampling::rng_from_seed(seed);
    let n = g.n() as NodeId;
    let mut edges: BTreeSet<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    // Every pair ever used as an insert target, so delete lines stay
    // textually unique even across insert/delete cycles.
    let mut used: BTreeSet<(NodeId, NodeId)> = edges.clone();
    let mut version = 0u64;
    let mut script = Vec::with_capacity(steps);
    for i in 0..steps {
        let jitter = (i + 1) as f64 * 1e-9;
        let query = |rng: &mut dyn FnMut() -> f64, pin: Option<u64>| {
            let k = 1 + (rng() * 3.0) as usize;
            let eps = 0.3 + rng() * 0.2 + jitter;
            match pin {
                Some(v) => format!("{k} {eps:.9} @{v}"),
                None => format!("{k} {eps:.9}"),
            }
        };
        let mut draw = || rng.gen::<f64>();
        let roll = (draw() * 100.0) as u32;
        let line = match roll {
            0..=54 => query(&mut draw, None),
            55..=69 => query(&mut draw, Some(version)),
            70..=74 => {
                // A stale pin needs an old version to exist.
                let pin = if version > 0 {
                    (draw() * version as f64) as u64 // in 0..version
                } else {
                    version
                };
                query(&mut draw, Some(pin))
            }
            75..=94 => {
                let p = 0.05 + draw() * 0.45 + jitter;
                let kind = (draw() * 3.0) as u32;
                if kind == 0 || edges.len() <= 2 {
                    // Insert a fresh, never-before-used pair.
                    let mut pick = || {
                        let u = (draw() * n as f64) as NodeId;
                        let v = (draw() * n as f64) as NodeId;
                        (u.min(n - 1), v.min(n - 1))
                    };
                    let mut pair = pick();
                    let mut tries = 0;
                    while (pair.0 == pair.1 || used.contains(&pair)) && tries < 50 {
                        pair = pick();
                        tries += 1;
                    }
                    if pair.0 == pair.1 || used.contains(&pair) {
                        // Dense graph, no fresh pair found: fall back to
                        // a plain query rather than emit an invalid op.
                        script.push(query(&mut draw, None));
                        continue;
                    }
                    edges.insert(pair);
                    used.insert(pair);
                    version += 1;
                    format!("delta + {} {} {p:.9}", pair.0, pair.1)
                } else {
                    let idx = (draw() * edges.len() as f64) as usize;
                    let &(u, v) = edges.iter().nth(idx.min(edges.len() - 1)).unwrap();
                    if kind == 1 {
                        edges.remove(&(u, v));
                        version += 1;
                        format!("delta - {u} {v}")
                    } else {
                        version += 1;
                        format!("delta ~ {u} {v} {p:.9}")
                    }
                }
            }
            _ => {
                if roll.is_multiple_of(2) {
                    format!("bogus {i}")
                } else {
                    format!("delta ? {i}")
                }
            }
        };
        script.push(line);
    }
    script
}

/// Canonical rendering of a line failure — shared by both executions so
/// records compare exactly without depending on full `Display` strings.
fn render_failure(error: &LineError) -> String {
    match error {
        LineError::Malformed { .. } => "malformed".to_string(),
        LineError::Frame(v) => format!("frame: {v}"),
        LineError::Rejected(ServeError::Delta(DeltaError::StaleVersion { requested, current })) => {
            format!("stale requested={requested} current={current}")
        }
        LineError::Rejected(ServeError::Delta(DeltaError::Parse { .. })) => {
            "rejected-parse".to_string()
        }
        LineError::Rejected(e) => format!("rejected: {e}"),
    }
}

/// Event recorder for the concurrent run.
#[derive(Default)]
struct Recorder(Mutex<Vec<ServeEvent>>);

impl ServeSink for Recorder {
    fn event(&self, event: ServeEvent) {
        self.0.lock().expect("recorder poisoned").push(event);
    }
}

/// Runs `script` through the real concurrent serving stack under an
/// arbitrary [`IndexConfig`], warming the index to `warm_sets` first
/// when nonzero.
fn run_concurrent_cfg(
    g: &Graph,
    script: &[String],
    config: IndexConfig,
    warm: usize,
) -> SimOutcome {
    let index = ConcurrentDeltaIndex::new(g.clone(), config).expect("simulated index builds");
    if warm > 0 {
        index.warm(warm).expect("index warmup");
    }
    run_serve_stack(&index, script)
}

/// Runs `script` through an N-shard [`ShardedDeltaIndex`] under an
/// arbitrary [`IndexConfig`], warming first when `warm > 0`.
fn run_sharded_cfg(
    g: &Graph,
    script: &[String],
    shards: usize,
    config: IndexConfig,
    warm: usize,
) -> SimOutcome {
    let index =
        ShardedDeltaIndex::new(g.clone(), config, shards).expect("simulated sharded index builds");
    if warm > 0 {
        index.warm(warm).expect("index warmup");
    }
    run_serve_stack(&index, script)
}

/// Replays `script` against the sequential [`DeltaIndex`] under an
/// arbitrary [`IndexConfig`], warming first when `warm > 0`.
fn run_model_cfg(g: &Graph, script: &[String], config: IndexConfig, warm: usize) -> SimOutcome {
    let mut index = DeltaIndex::new(g.clone(), config).expect("simulated index builds");
    if warm > 0 {
        index.warm(warm).expect("index warmup");
    }
    run_model(index, script)
}

/// Runs `script` through the real concurrent serving stack (one query
/// worker, so the outcome is deterministic) and canonicalizes the
/// result. Panics on internal serving errors — those are test failures,
/// not simulation outcomes.
pub fn run_concurrent(g: &Graph, script: &[String]) -> SimOutcome {
    run_concurrent_cfg(g, script, sim_config(), 0)
}

/// [`run_concurrent`] with the sentinel tier active: the index warms
/// past the sentinel boundary before the script starts, so every
/// scripted query serves from truncated pools.
pub fn run_concurrent_sentinel(g: &Graph, script: &[String]) -> SimOutcome {
    run_concurrent_cfg(g, script, sim_config_sentinel(), SENTINEL_WARM_SETS)
}

/// [`run_concurrent`] with the sketched validation tier active: every
/// scripted query certifies through the slack-widened OPIM bound over
/// the HLL sketches (promoting precision when the slack blocks it).
pub fn run_concurrent_sketch(g: &Graph, script: &[String]) -> SimOutcome {
    run_concurrent_cfg(g, script, sim_config_sketch(), SKETCH_WARM_SETS)
}

/// [`run_concurrent`] under Linear Threshold: the identical serving
/// stack, pool of chain-shaped LT RR sets.
pub fn run_concurrent_lt(g: &Graph, script: &[String]) -> SimOutcome {
    run_concurrent_cfg(g, script, sim_config_lt(), 0)
}

/// Runs `script` through the serving loop over an N-shard
/// [`ShardedDeltaIndex`] — the model check that chunk-ownership sharding
/// keeps serving a pure function of the script, byte-identical to the
/// sequential model for every shard count.
pub fn run_sharded(g: &Graph, script: &[String], shards: usize) -> SimOutcome {
    run_sharded_cfg(g, script, shards, sim_config(), 0)
}

/// [`run_sharded`] with the sentinel tier active (see
/// [`run_concurrent_sentinel`]): sentinels are selected globally and
/// applied per shard, and the outcome must still match the sequential
/// sentinel model byte for byte.
pub fn run_sharded_sentinel(g: &Graph, script: &[String], shards: usize) -> SimOutcome {
    run_sharded_cfg(g, script, shards, sim_config_sentinel(), SENTINEL_WARM_SETS)
}

/// [`run_sharded`] with the sketched validation tier active: per-shard
/// sketches over owned chunks, merged at certification, must serve the
/// exact session the sequential sketch model does for every shard count.
pub fn run_sharded_sketch(g: &Graph, script: &[String], shards: usize) -> SimOutcome {
    run_sharded_cfg(g, script, shards, sim_config_sketch(), SKETCH_WARM_SETS)
}

/// [`run_sharded`] under Linear Threshold.
pub fn run_sharded_lt(g: &Graph, script: &[String], shards: usize) -> SimOutcome {
    run_sharded_cfg(g, script, shards, sim_config_lt(), 0)
}

/// Drives any [`ServeIndex`] through [`serve_queries`] (one query
/// worker) and canonicalizes the outcome.
fn run_serve_stack<I: ServeIndex>(index: &I, script: &[String]) -> SimOutcome {
    let input = format!("{}\n", script.join("\n"));
    let mut output = Vec::new();
    let rec = Recorder::default();
    let shutdown = serve_queries(index, SIM_DELTA, 1, input.as_bytes(), &mut output, &rec)
        .expect("serving loop I/O");
    assert!(!shutdown, "scripts do not contain shutdown lines");

    // Re-associate events with script lines. Lines are unique, so a map
    // by text is unambiguous; answers pair with Answered events by order.
    let events = rec.0.into_inner().expect("recorder poisoned");
    let answers: Vec<&str> = std::str::from_utf8(&output)
        .expect("seed output is ASCII")
        .lines()
        .collect();
    let mut answered_order: Vec<String> = Vec::new();
    let mut failed: HashMap<String, String> = HashMap::new();
    let mut applied: HashMap<String, String> = HashMap::new();
    for event in &events {
        match event {
            ServeEvent::Answered { line, .. } => answered_order.push(line.clone()),
            ServeEvent::LineFailed { line, error } => {
                let prev = failed.insert(line.clone(), render_failure(error));
                assert!(prev.is_none(), "script lines must be unique: {line:?}");
            }
            ServeEvent::DeltaApplied { op, report } => {
                let prev = applied.insert(
                    op.clone(),
                    format!(
                        "applied v{} regen={}",
                        report.version, report.regenerated_sets
                    ),
                );
                assert!(prev.is_none(), "delta ops must be unique: {op:?}");
            }
            ServeEvent::InputError { message } => {
                panic!("unexpected input error in simulation: {message}")
            }
        }
    }
    assert_eq!(
        answered_order.len(),
        answers.len(),
        "every answered query writes exactly one output line"
    );

    let mut next_answer = 0usize;
    let records = script
        .iter()
        .map(|line| {
            if let Some(op) = line.strip_prefix("delta ") {
                if let Some(r) = applied.get(op.trim()) {
                    return r.clone();
                }
                return failed
                    .get(line)
                    .unwrap_or_else(|| panic!("no outcome for {line:?}"))
                    .clone();
            }
            if answered_order.get(next_answer).map(String::as_str) == Some(line.as_str()) {
                let r = format!("ok {}", answers[next_answer]);
                next_answer += 1;
                return r;
            }
            failed
                .get(line)
                .unwrap_or_else(|| panic!("no outcome for {line:?}"))
                .clone()
        })
        .collect();
    SimOutcome {
        records,
        final_version: ServeIndex::version(index).unwrap_or(0),
    }
}

/// Replays `script` against the sequential [`DeltaIndex`] — the
/// reference semantics the concurrent stack must match.
pub fn run_sequential_model(g: &Graph, script: &[String]) -> SimOutcome {
    run_model_cfg(g, script, sim_config(), 0)
}

/// [`run_sequential_model`] with the sentinel tier active and the same
/// pre-serving warmup as the concurrent/sharded sentinel runs.
pub fn run_sequential_model_sentinel(g: &Graph, script: &[String]) -> SimOutcome {
    run_model_cfg(g, script, sim_config_sentinel(), SENTINEL_WARM_SETS)
}

/// [`run_sequential_model`] with the sketched validation tier active
/// and the same pre-serving warmup as the concurrent/sharded sketch
/// runs.
pub fn run_sequential_model_sketch(g: &Graph, script: &[String]) -> SimOutcome {
    run_model_cfg(g, script, sim_config_sketch(), SKETCH_WARM_SETS)
}

/// [`run_sequential_model`] under Linear Threshold.
pub fn run_sequential_model_lt(g: &Graph, script: &[String]) -> SimOutcome {
    run_model_cfg(g, script, sim_config_lt(), 0)
}

fn run_model(mut index: DeltaIndex, script: &[String]) -> SimOutcome {
    let records = script
        .iter()
        .map(|line| {
            if let Some(op) = line.strip_prefix("delta ") {
                return match GraphDelta::parse_line(op.trim()) {
                    Ok(Some(parsed)) => {
                        let mut delta = GraphDelta::new();
                        delta.push(parsed);
                        match index.apply_delta(&delta) {
                            Ok(report) => format!(
                                "applied v{} regen={}",
                                report.version, report.regenerated_sets
                            ),
                            Err(DeltaError::Parse { .. }) => "rejected-parse".to_string(),
                            Err(e) => format!("rejected: {e}"),
                        }
                    }
                    _ => "rejected-parse".to_string(),
                };
            }
            match parse_query(line) {
                Err(_) => "malformed".to_string(),
                Ok((k, epsilon, pin)) => {
                    if let Some(p) = pin {
                        if p != index.version() {
                            return format!("stale requested={p} current={}", index.version());
                        }
                    }
                    match index.query(k, epsilon, SIM_DELTA) {
                        Ok(ans) => {
                            let seeds: Vec<String> =
                                ans.seeds.iter().map(|s| s.to_string()).collect();
                            format!("ok {}", seeds.join(" "))
                        }
                        Err(e) => format!("rejected: {e}"),
                    }
                }
            }
        })
        .collect();
    SimOutcome {
        records,
        final_version: index.version(),
    }
}

/// Generates the script for `seed`, runs both executions, and compares.
/// On divergence the error names the seed and the first differing line,
/// so the failure replays bit-identically from that seed alone.
pub fn check_seed(g: &Graph, seed: u64, steps: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let concurrent = run_concurrent(g, &script);
    let model = run_sequential_model(g, &script);
    diff_outcomes("concurrent", seed, steps, &script, &concurrent, &model)
}

/// Like [`check_seed`], but the serving stack runs over an N-shard
/// [`ShardedDeltaIndex`]: the model check that a sharded session is the
/// same pure function of its input as the sequential index.
pub fn check_seed_sharded(g: &Graph, seed: u64, steps: usize, shards: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let sharded = run_sharded(g, &script, shards);
    let model = run_sequential_model(g, &script);
    let label = format!("sharded({shards})");
    diff_outcomes(&label, seed, steps, &script, &sharded, &model)
}

/// [`check_seed`] with the sentinel tier active on both sides: the
/// concurrent sentinel stack (truncated growth, sentinel-aware repair
/// and refresh) must match the sequential sentinel model bit for bit.
pub fn check_seed_sentinel(g: &Graph, seed: u64, steps: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let concurrent = run_concurrent_sentinel(g, &script);
    let model = run_sequential_model_sentinel(g, &script);
    diff_outcomes(
        "concurrent+sentinel",
        seed,
        steps,
        &script,
        &concurrent,
        &model,
    )
}

/// [`check_seed_sharded`] with the sentinel tier active on both sides.
pub fn check_seed_sharded_sentinel(
    g: &Graph,
    seed: u64,
    steps: usize,
    shards: usize,
) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let sharded = run_sharded_sentinel(g, &script, shards);
    let model = run_sequential_model_sentinel(g, &script);
    let label = format!("sharded({shards})+sentinel");
    diff_outcomes(&label, seed, steps, &script, &sharded, &model)
}

/// [`check_seed`] with the sketched validation tier active on both
/// sides: the concurrent sketch stack (sketch-absorbing growth,
/// chunk-wise sketch repair, error-ladder promotion) must match the
/// sequential sketch model bit for bit.
pub fn check_seed_sketch(g: &Graph, seed: u64, steps: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let concurrent = run_concurrent_sketch(g, &script);
    let model = run_sequential_model_sketch(g, &script);
    diff_outcomes(
        "concurrent+sketch",
        seed,
        steps,
        &script,
        &concurrent,
        &model,
    )
}

/// [`check_seed_sharded`] with the sketched validation tier active on
/// both sides.
pub fn check_seed_sharded_sketch(
    g: &Graph,
    seed: u64,
    steps: usize,
    shards: usize,
) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let sharded = run_sharded_sketch(g, &script, shards);
    let model = run_sequential_model_sketch(g, &script);
    let label = format!("sharded({shards})+sketch");
    diff_outcomes(&label, seed, steps, &script, &sharded, &model)
}

/// [`check_seed`] under Linear Threshold: the concurrent stack serving
/// LT pools (chain-shaped RR sets, LT-aware delta repair) must match
/// the sequential LT model bit for bit.
pub fn check_seed_lt(g: &Graph, seed: u64, steps: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let concurrent = run_concurrent_lt(g, &script);
    let model = run_sequential_model_lt(g, &script);
    diff_outcomes("concurrent+lt", seed, steps, &script, &concurrent, &model)
}

/// [`check_seed_sharded`] under Linear Threshold.
pub fn check_seed_sharded_lt(
    g: &Graph,
    seed: u64,
    steps: usize,
    shards: usize,
) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let sharded = run_sharded_lt(g, &script, shards);
    let model = run_sequential_model_lt(g, &script);
    let label = format!("sharded({shards})+lt");
    diff_outcomes(&label, seed, steps, &script, &sharded, &model)
}

/// [`check_seed`] under Linear Threshold with the sentinel tier active
/// on both sides: truncated LT chains through growth, repair, and
/// refresh.
pub fn check_seed_lt_sentinel(g: &Graph, seed: u64, steps: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let concurrent = run_concurrent_cfg(g, &script, sim_config_lt_sentinel(), SENTINEL_WARM_SETS);
    let model = run_model_cfg(g, &script, sim_config_lt_sentinel(), SENTINEL_WARM_SETS);
    diff_outcomes(
        "concurrent+lt+sentinel",
        seed,
        steps,
        &script,
        &concurrent,
        &model,
    )
}

/// [`check_seed`] under Linear Threshold with the sketched validation
/// tier active on both sides.
pub fn check_seed_lt_sketch(g: &Graph, seed: u64, steps: usize) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let concurrent = run_concurrent_cfg(g, &script, sim_config_lt_sketch(), SKETCH_WARM_SETS);
    let model = run_model_cfg(g, &script, sim_config_lt_sketch(), SKETCH_WARM_SETS);
    diff_outcomes(
        "concurrent+lt+sketch",
        seed,
        steps,
        &script,
        &concurrent,
        &model,
    )
}

/// [`check_seed_sharded`] under Linear Threshold with the sketched
/// validation tier active on both sides.
pub fn check_seed_sharded_lt_sketch(
    g: &Graph,
    seed: u64,
    steps: usize,
    shards: usize,
) -> Result<(), String> {
    let script = generate_script(g, seed, steps);
    let sharded = run_sharded_cfg(g, &script, shards, sim_config_lt_sketch(), SKETCH_WARM_SETS);
    let model = run_model_cfg(g, &script, sim_config_lt_sketch(), SKETCH_WARM_SETS);
    let label = format!("sharded({shards})+lt+sketch");
    diff_outcomes(&label, seed, steps, &script, &sharded, &model)
}

/// Reports the first divergence between a serving-stack outcome and the
/// sequential model, naming the seed so failures replay exactly.
fn diff_outcomes(
    label: &str,
    seed: u64,
    steps: usize,
    script: &[String],
    got: &SimOutcome,
    model: &SimOutcome,
) -> Result<(), String> {
    if got == model {
        return Ok(());
    }
    if got.final_version != model.final_version {
        return Err(format!(
            "seed {seed}: final version diverged ({label} {} vs model {}); \
             reproduce with seed {seed}, {steps} steps",
            got.final_version, model.final_version
        ));
    }
    let (i, (c, m)) = got
        .records
        .iter()
        .zip(&model.records)
        .enumerate()
        .find(|(_, (c, m))| c != m)
        .expect("equal-length record lists differ somewhere");
    Err(format!(
        "seed {seed}: line {i} {:?} diverged: {label} {c:?} vs model {m:?}; \
         reproduce with seed {seed}, {steps} steps",
        script[i]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    fn sim_graph() -> Graph {
        barabasi_albert(48, 2, WeightModel::Wc, 17)
    }

    #[test]
    fn script_generation_is_deterministic_and_unique() {
        let g = sim_graph();
        let a = generate_script(&g, 7, 60);
        let b = generate_script(&g, 7, 60);
        assert_eq!(a, b, "same seed, same script");
        let distinct: BTreeSet<&String> = a.iter().collect();
        assert_eq!(distinct.len(), a.len(), "lines are textually unique");
        let c = generate_script(&g, 8, 60);
        assert_ne!(a, c, "different seed, different script");
    }

    #[test]
    fn script_mixes_all_line_kinds() {
        let g = sim_graph();
        let script = generate_script(&g, 3, 200);
        assert!(script.iter().any(|l| l.starts_with("delta + ")));
        assert!(script.iter().any(|l| l.starts_with("delta - ")));
        assert!(script.iter().any(|l| l.starts_with("delta ~ ")));
        assert!(script.iter().any(|l| l.contains('@')));
        assert!(script.iter().any(|l| l.starts_with("bogus")));
    }
}
