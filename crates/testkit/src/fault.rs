//! Byte-level fault injection for snapshot and stream I/O.
//!
//! [`FaultyReader`] wraps an in-memory byte buffer and injects exactly
//! one fault — truncation, a flipped byte, or a hard I/O error at a
//! chosen offset — while behaving like a perfectly ordinary `Read`
//! otherwise. Pointing it at `subsim_index::read_index` (which is
//! generic over `Read`) or at the serving loop's input exercises every
//! corrupt-snapshot and dropped-connection path without touching the
//! filesystem.
//!
//! Worker-panic injection uses a different lever: the chunk hooks on
//! [`subsim_diffusion::WorkerPool`] (forwarded by the indexes as
//! `set_chunk_hook`), which run inside the generation workers and can
//! panic on demand. [`panic_on_chunk`] builds the common hooks.

use std::io::{self, Read};
use subsim_diffusion::ChunkHook;

/// One injected I/O fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault — the reader is transparent (the control arm).
    None,
    /// The stream ends cleanly after this many bytes (a truncated file
    /// or a connection closed mid-message).
    TruncateAt(usize),
    /// Reads fail with `ErrorKind::ConnectionReset` once this many bytes
    /// have been served (a connection dropped mid-stream).
    ErrorAt(usize),
    /// The byte at `offset` arrives XOR-ed with `xor` (bit rot; pick a
    /// nonzero `xor`).
    CorruptByte {
        /// Position of the damaged byte.
        offset: usize,
        /// Bit pattern XOR-ed into it.
        xor: u8,
    },
}

/// A `Read` over an owned buffer with one [`Fault`] injected.
#[derive(Debug)]
pub struct FaultyReader {
    data: Vec<u8>,
    pos: usize,
    fault: Fault,
}

impl FaultyReader {
    /// Wraps `data` with `fault`.
    pub fn new(data: Vec<u8>, fault: Fault) -> Self {
        FaultyReader {
            data,
            pos: 0,
            fault,
        }
    }

    /// The effective end of the stream.
    fn limit(&self) -> usize {
        match self.fault {
            Fault::TruncateAt(at) => at.min(self.data.len()),
            _ => self.data.len(),
        }
    }
}

impl Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Fault::ErrorAt(at) = self.fault {
            if self.pos >= at {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected stream failure at byte {at}"),
                ));
            }
        }
        let mut end = self.limit();
        if let Fault::ErrorAt(at) = self.fault {
            end = end.min(at); // serve the clean prefix, then fail above
        }
        let take = buf.len().min(end.saturating_sub(self.pos));
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        if let Fault::CorruptByte { offset, xor } = self.fault {
            if (self.pos..self.pos + take).contains(&offset) {
                buf[offset - self.pos] ^= xor;
            }
        }
        self.pos += take;
        Ok(take)
    }
}

/// A chunk hook that panics on every chunk — the bluntest worker fault.
pub fn panic_on_chunk() -> ChunkHook {
    std::sync::Arc::new(|_worker, _chunk| panic!("injected worker fault"))
}

/// A chunk hook that panics only on chunk id `chunk` — faults one chunk
/// of a batch while its siblings complete normally.
pub fn panic_on_chunk_id(chunk: u64) -> ChunkHook {
    std::sync::Arc::new(move |_worker, c| {
        if c == chunk {
            panic!("injected worker fault on chunk {chunk}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut r: FaultyReader) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn no_fault_is_transparent() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(
            drain(FaultyReader::new(data.clone(), Fault::None)).unwrap(),
            data
        );
    }

    #[test]
    fn truncation_ends_the_stream_early() {
        let data: Vec<u8> = (0..=255).collect();
        let got = drain(FaultyReader::new(data.clone(), Fault::TruncateAt(10))).unwrap();
        assert_eq!(got, &data[..10]);
    }

    #[test]
    fn error_fault_serves_the_clean_prefix_then_fails() {
        let data: Vec<u8> = (0..=255).collect();
        let mut r = FaultyReader::new(data.clone(), Fault::ErrorAt(7));
        let mut buf = vec![0u8; 256];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], &data[..7]);
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let data = vec![0u8; 32];
        let got = drain(FaultyReader::new(
            data,
            Fault::CorruptByte {
                offset: 5,
                xor: 0xFF,
            },
        ))
        .unwrap();
        assert_eq!(got[5], 0xFF);
        assert!(got.iter().enumerate().all(|(i, &b)| i == 5 || b == 0));
    }

    #[test]
    fn corruption_survives_small_reads() {
        // The damaged byte must flip even when reads are 1 byte at a time.
        let data = vec![0u8; 16];
        let mut r = FaultyReader::new(
            data,
            Fault::CorruptByte {
                offset: 9,
                xor: 0x0F,
            },
        );
        let mut out = Vec::new();
        let mut b = [0u8; 1];
        while r.read(&mut b).unwrap() == 1 {
            out.push(b[0]);
        }
        assert_eq!(out[9], 0x0F);
    }
}
