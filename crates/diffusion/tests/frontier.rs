//! Differential battery for the flat-frontier kernel (PR 8).
//!
//! The frontier path must be a drop-in replacement for the scalar queue
//! walk: same sets, same costs, same sentinel hits, same RNG stream, for
//! every strategy × weight mode × sentinel mode × thread count. Every
//! test here runs the two paths on identical seeds and compares bitwise.
//!
//! The `#[ignore]`d heavy variants widen the sweep; CI's `frontier` job
//! runs the battery in release mode at 1, 2, and 4 threads.

use proptest::prelude::*;
use rand::Rng;
use subsim_diffusion::parallel::{par_generate, par_generate_chunks};
use subsim_diffusion::pool::WorkerPool;
use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
use subsim_graph::generators::{barabasi_albert, erdos_renyi_gnm, star_graph};
use subsim_graph::{Graph, NodeId, WeightModel};
use subsim_sampling::rng_from_seed;

const STRATEGIES: [RrStrategy; 4] = [
    RrStrategy::VanillaIc,
    RrStrategy::SubsimIc,
    RrStrategy::SubsimBucketIc,
    RrStrategy::Lt,
];

fn weight_models() -> Vec<(&'static str, WeightModel)> {
    vec![
        ("wc", WeightModel::Wc),
        ("wc-variant", WeightModel::WcVariant { theta: 4.0 }),
        // Uniform IC below and above SCAN_THRESHOLD exercises both the
        // geometric-skip and the dense-scan arm of the SUBSIM kernel.
        ("uniform-sparse", WeightModel::UniformIc { p: 0.05 }),
        ("uniform-dense", WeightModel::UniformIc { p: 0.6 }),
        // Per-edge storage exercises the sorted-sampler / bucket arms.
        ("exponential", WeightModel::Exponential { lambda: 1.0 }),
        ("trivalency", WeightModel::Trivalency),
    ]
}

/// Generates `count` rooted sets on both paths and asserts bit-equality
/// of sets, cost proxy, sentinel hits, and RNG stream position.
fn assert_paths_agree(
    g: &Graph,
    strategy: RrStrategy,
    sentinel: &[NodeId],
    count: usize,
    seed: u64,
) {
    let fast = RrSampler::new(g, strategy);
    let slow = RrSampler::scalar(g, strategy);
    assert!(!slow.uses_frontier());
    // Every strategy has a flat path now — LT included (PR 10).
    assert!(fast.uses_frontier(), "{strategy:?} must build a kernel");
    let mut ctx_f = RrContext::new(g.n());
    let mut ctx_s = RrContext::new(g.n());
    if !sentinel.is_empty() {
        ctx_f.set_sentinel(sentinel);
        ctx_s.set_sentinel(sentinel);
    }
    let mut rng_f = rng_from_seed(seed);
    let mut rng_s = rng_from_seed(seed);
    for i in 0..count {
        let a = fast.generate(&mut ctx_f, &mut rng_f);
        let b = slow.generate_scalar(&mut ctx_s, &mut rng_s);
        assert_eq!(a, b, "set {i} size diverged");
        assert_eq!(ctx_f.last(), ctx_s.last(), "set {i} content diverged");
        assert_eq!(ctx_f.cost, ctx_s.cost, "cost diverged at set {i}");
        assert_eq!(
            ctx_f.sentinel_hits, ctx_s.sentinel_hits,
            "sentinel hits diverged at set {i}"
        );
    }
    // Same number of draws consumed ⇒ the streams are still in lockstep.
    assert_eq!(
        rng_f.gen::<u64>(),
        rng_s.gen::<u64>(),
        "RNG streams diverged"
    );
}

#[test]
fn frontier_matches_scalar_across_strategies_and_weights() {
    for (wi, (wname, model)) in weight_models().into_iter().enumerate() {
        let g = barabasi_albert(400, 3, model, 700 + wi as u64);
        for strategy in STRATEGIES {
            assert_paths_agree(&g, strategy, &[], 300, 41 + wi as u64);
            // Sentinel on: the highest-out-degree node truncates many sets.
            let hub = (0..g.n() as NodeId)
                .max_by_key(|&v| g.out_degree(v))
                .unwrap();
            assert_paths_agree(&g, strategy, &[hub, hub / 2 + 1], 300, 43 + wi as u64);
            let _ = wname;
        }
    }
}

#[test]
fn frontier_matches_scalar_on_degenerate_shapes() {
    // A star (one huge frontier level) and a zero-probability graph (skip
    // arm breaks immediately with NEVER).
    for strategy in STRATEGIES {
        assert_paths_agree(&star_graph(500, WeightModel::Wc), strategy, &[], 200, 61);
        assert_paths_agree(
            &erdos_renyi_gnm(300, 1200, WeightModel::UniformIc { p: 0.0 }, 9),
            strategy,
            &[],
            100,
            62,
        );
        assert_paths_agree(
            &erdos_renyi_gnm(300, 1200, WeightModel::UniformIc { p: 1.0 }, 10),
            strategy,
            &[7],
            100,
            63,
        );
    }
}

/// LT across every weight model, including `WeightModel::Lt` itself
/// (uniform `1/d_in` storage — the no-table `gen_range` arm) and the
/// per-edge models that engage the flattened alias tables. Sentinel off
/// and on, with the RNG-lockstep check of `assert_paths_agree`.
#[test]
fn lt_chain_matches_scalar_across_weight_models() {
    let mut models = weight_models();
    models.push(("lt", WeightModel::Lt));
    for (wi, (wname, model)) in models.into_iter().enumerate() {
        let g = barabasi_albert(400, 3, model, 1000 + wi as u64);
        assert_paths_agree(&g, RrStrategy::Lt, &[], 400, 141 + wi as u64);
        let hub = (0..g.n() as NodeId)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap();
        assert_paths_agree(
            &g,
            RrStrategy::Lt,
            &[hub, hub / 3 + 1],
            400,
            143 + wi as u64,
        );
        let _ = wname;
    }
}

#[test]
fn frontier_matches_scalar_across_thread_counts() {
    let g = barabasi_albert(350, 3, WeightModel::Wc, 88);
    for strategy in [RrStrategy::VanillaIc, RrStrategy::SubsimIc, RrStrategy::Lt] {
        let fast = RrSampler::new(&g, strategy);
        let slow = RrSampler::scalar(&g, strategy);
        let reference = par_generate_chunks(&slow, None, 0..12, 32, 1, 89);
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let batch = pool.generate_chunks(&fast, None, 0..12, 32, 89);
            assert_eq!(batch.rr.len(), reference.rr.len(), "threads={threads}");
            for i in 0..batch.rr.len() {
                assert_eq!(
                    batch.rr.get(i),
                    reference.rr.get(i),
                    "threads={threads} set {i}"
                );
            }
            assert_eq!(batch.cost, reference.cost, "threads={threads}");
        }
        // The per-worker (non-chunked) splitter too.
        let a = par_generate(&fast, None, 600, 3, 90);
        let b = par_generate(&slow, None, 600, 3, 90);
        for i in 0..a.rr.len() {
            assert_eq!(a.rr.get(i), b.rr.get(i), "par set {i}");
        }
    }
}

#[test]
fn sentinel_reinstall_reuses_dirty_words_correctly() {
    // Installing sentinel B over a context that previously held sentinel A
    // (same graph size ⇒ the dirty-word fast path) must behave exactly
    // like a fresh context holding only B.
    let g = barabasi_albert(300, 4, WeightModel::WcVariant { theta: 4.0 }, 77);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let a: Vec<NodeId> = vec![3, 64, 65, 128, 255];
    let b: Vec<NodeId> = vec![4, 66, 192];

    let mut reused = RrContext::new(g.n());
    reused.set_sentinel(&a);
    let mut rng = rng_from_seed(1);
    for _ in 0..50 {
        sampler.generate(&mut reused, &mut rng);
    }
    reused.set_sentinel(&b);
    reused.reset_counters();

    let mut fresh = RrContext::new(g.n());
    fresh.set_sentinel(&b);

    let mut rng_r = rng_from_seed(2);
    let mut rng_f = rng_from_seed(2);
    for i in 0..200 {
        sampler.generate(&mut reused, &mut rng_r);
        sampler.generate(&mut fresh, &mut rng_f);
        assert_eq!(reused.last(), fresh.last(), "set {i}");
    }
    assert_eq!(reused.sentinel_hits, fresh.sentinel_hits);
    assert!(reused.sentinel_hits > 0, "sentinel B never fired");
}

#[test]
fn frontier_telemetry_populated_and_cost_bounded() {
    let g = barabasi_albert(400, 3, WeightModel::Wc, 99);
    let fast = RrSampler::new(&g, RrStrategy::SubsimIc);
    let slow = RrSampler::scalar(&g, RrStrategy::SubsimIc);
    assert!(fast.uses_frontier());

    let mut ctx_f = RrContext::new(g.n());
    let mut ctx_s = RrContext::new(g.n());
    let mut rng_f = rng_from_seed(5);
    let mut rng_s = rng_from_seed(5);
    for _ in 0..500 {
        fast.generate(&mut ctx_f, &mut rng_f);
        slow.generate_scalar(&mut ctx_s, &mut rng_s);
    }
    // Telemetry: every generated set expands at least the root level; the
    // scalar path records none.
    assert!(ctx_f.frontier_levels >= 500);
    assert!(ctx_f.frontier_width_sum >= ctx_f.frontier_levels);
    assert!(ctx_f.frontier_peak_width >= 1);
    assert_eq!(ctx_s.frontier_levels, 0);

    // Cost-proxy monotonicity: batching the draws must not inflate the
    // draw count beyond a per-level setup term — and in fact the batched
    // path draws *exactly* the scalar count.
    assert!(ctx_f.cost <= ctx_s.cost + ctx_f.frontier_levels);
    assert_eq!(ctx_f.cost, ctx_s.cost);

    ctx_f.reset_counters();
    assert_eq!(ctx_f.frontier_levels, 0);
    assert_eq!(ctx_f.frontier_width_sum, 0);
    assert_eq!(ctx_f.frontier_peak_width, 0);
}

#[test]
fn lt_chain_telemetry_records_width_one_levels() {
    // The LT kernel is a chain walk: every recorded level is exactly one
    // node wide, and the step count (cost) equals the level count.
    let g = barabasi_albert(300, 3, WeightModel::Trivalency, 107);
    let fast = RrSampler::new(&g, RrStrategy::Lt);
    assert!(fast.uses_frontier());
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(6);
    for _ in 0..400 {
        fast.generate(&mut ctx, &mut rng);
    }
    assert!(ctx.frontier_levels >= 400);
    assert_eq!(ctx.frontier_width_sum, ctx.frontier_levels);
    assert_eq!(ctx.frontier_peak_width, 1);
    assert_eq!(ctx.cost, ctx.frontier_levels);
}

/// Strategy index → RrStrategy (proptest-friendly).
fn strategy_of(i: usize) -> RrStrategy {
    STRATEGIES[i % STRATEGIES.len()]
}

fn model_of(i: usize) -> WeightModel {
    weight_models()[i % weight_models().len()].1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frontier_equals_scalar_on_random_graphs(
        n in 20usize..200,
        edges_per in 2usize..5,
        graph_seed in 0u64..1_000_000,
        gen_seed in 0u64..1_000_000,
        strat in 0usize..4,
        model in 0usize..6,
        sentinel_raw in proptest::collection::vec(0u32..1_000_000, 0..4),
    ) {
        let g = barabasi_albert(n, edges_per, model_of(model), graph_seed);
        let sentinel: Vec<NodeId> =
            sentinel_raw.iter().map(|&v| v % n as u32).collect();
        assert_paths_agree(&g, strategy_of(strat), &sentinel, 60, gen_seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    #[ignore = "heavy differential sweep; run with --include-ignored in CI"]
    fn frontier_equals_scalar_heavy(
        n in 100usize..800,
        edges_per in 2usize..6,
        graph_seed in 0u64..1_000_000,
        gen_seed in 0u64..1_000_000,
        strat in 0usize..4,
        model in 0usize..6,
        sentinel_raw in proptest::collection::vec(0u32..1_000_000, 0..8),
    ) {
        let g = erdos_renyi_gnm(n, n * edges_per, model_of(model), graph_seed);
        let sentinel: Vec<NodeId> =
            sentinel_raw.iter().map(|&v| v % n as u32).collect();
        assert_paths_agree(&g, strategy_of(strat), &sentinel, 120, gen_seed);
    }

    /// Heavy LT-only sweep: larger graphs, longer runs, per-edge and
    /// uniform weight storage both engaged, sentinel sets of all sizes.
    #[test]
    #[ignore = "heavy LT differential sweep; run with --include-ignored in CI"]
    fn lt_chain_equals_scalar_heavy(
        n in 100usize..800,
        edges_per in 2usize..6,
        graph_seed in 0u64..1_000_000,
        gen_seed in 0u64..1_000_000,
        model in 0usize..7,
        sentinel_raw in proptest::collection::vec(0u32..1_000_000, 0..8),
    ) {
        let mut models = weight_models();
        models.push(("lt", WeightModel::Lt));
        let g = erdos_renyi_gnm(n, n * edges_per, models[model % models.len()].1, graph_seed);
        let sentinel: Vec<NodeId> =
            sentinel_raw.iter().map(|&v| v % n as u32).collect();
        assert_paths_agree(&g, RrStrategy::Lt, &sentinel, 200, gen_seed);
    }
}
