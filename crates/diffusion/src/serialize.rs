//! Binary (de)serialization of RR collections.
//!
//! Generating millions of RR sets dominates IM running time; pipelines
//! that tune `k` or compare selection strategies on a *fixed* sample want
//! to generate once and reload. The format is a small, versioned,
//! little-endian layout:
//!
//! ```text
//! magic "SUBSIMRR" | version u32 | n u64 | count u64
//! offsets: (count + 1) × u64 | nodes: total × u32
//! ```

use crate::collection::RrCollection;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"SUBSIMRR";
const VERSION: u32 = 1;

/// Writes `rr` to `w`.
pub fn write_rr_collection<W: Write>(rr: &RrCollection, w: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(rr.graph_n() as u64).to_le_bytes())?;
    w.write_all(&(rr.len() as u64).to_le_bytes())?;
    let mut offset = 0u64;
    w.write_all(&offset.to_le_bytes())?;
    for set in rr.iter() {
        offset += set.len() as u64;
        w.write_all(&offset.to_le_bytes())?;
    }
    for set in rr.iter() {
        for &v in set {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

fn read_exact_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads a collection previously written by [`write_rr_collection`].
pub fn read_rr_collection<R: Read>(r: R) -> io::Result<RrCollection> {
    let mut r = io::BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a SUBSIM RR collection"));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)?;
    if u32::from_le_bytes(ver) != VERSION {
        return Err(bad("unsupported RR collection version"));
    }
    let n = read_exact_u64(&mut r)? as usize;
    let count = read_exact_u64(&mut r)? as usize;
    // Do NOT pre-reserve from the untrusted `count`: a corrupt header
    // could demand exabytes. Growing lazily means a truncated stream
    // errors out after reading only what actually exists.
    let mut offsets = Vec::new();
    for _ in 0..=count {
        offsets.push(read_exact_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("corrupt offsets"));
    }
    let total = *offsets.last().unwrap();
    let mut rr = RrCollection::new(n);
    let mut buf = vec![0u8; 4];
    let mut set: Vec<u32> = Vec::new();
    let mut cursor = 0usize;
    for pair in offsets.windows(2) {
        set.clear();
        for _ in pair[0]..pair[1] {
            r.read_exact(&mut buf)?;
            let v = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
            if v as usize >= n {
                return Err(bad("node id out of range"));
            }
            set.push(v);
            cursor += 1;
        }
        rr.push(&set);
    }
    debug_assert_eq!(cursor, total);
    Ok(rr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::{RrContext, RrSampler, RrStrategy};
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;
    use subsim_sampling::rng_from_seed;

    fn sample_collection() -> RrCollection {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 41);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(42);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, 500);
        rr
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let rr = sample_collection();
        let mut buf = Vec::new();
        write_rr_collection(&rr, &mut buf).unwrap();
        let back = read_rr_collection(buf.as_slice()).unwrap();
        assert_eq!(back.graph_n(), rr.graph_n());
        assert_eq!(back.len(), rr.len());
        for i in 0..rr.len() {
            assert_eq!(back.get(i), rr.get(i));
        }
    }

    #[test]
    fn empty_collection_roundtrips() {
        let rr = RrCollection::new(10);
        let mut buf = Vec::new();
        write_rr_collection(&rr, &mut buf).unwrap();
        let back = read_rr_collection(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.graph_n(), 10);
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = read_rr_collection(&b"NOTMAGIC........"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_stream() {
        let rr = sample_collection();
        let mut buf = Vec::new();
        write_rr_collection(&rr, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_rr_collection(buf.as_slice()).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Fuzz-ish: random byte soup must yield Err, not a panic.
        use rand::Rng;
        use subsim_sampling::rng_from_seed;
        let mut rng = rng_from_seed(99);
        for len in [0usize, 7, 8, 12, 20, 64, 256] {
            for _ in 0..50 {
                let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                let _ = read_rr_collection(bytes.as_slice());
            }
        }
        // And with a valid magic prefix followed by garbage.
        for _ in 0..50 {
            let mut bytes = b"SUBSIMRR".to_vec();
            bytes.extend_from_slice(&1u32.to_le_bytes());
            let tail: Vec<u8> = (0..rng.gen_range(0..64)).map(|_| rng.gen()).collect();
            bytes.extend(tail);
            let _ = read_rr_collection(bytes.as_slice());
        }
    }

    #[test]
    fn rejects_out_of_range_node() {
        // Hand-craft a v1 stream with n = 1 but node id 7.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SUBSIMRR");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // n = 1
        buf.extend_from_slice(&1u64.to_le_bytes()); // count = 1
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        assert!(read_rr_collection(buf.as_slice()).is_err());
    }
}
