//! Reverse-reachable set generation.
//!
//! A random RR set (paper Section 2.2) is built by sampling a uniform root
//! `v` and traversing *incoming* edges backwards, activating each
//! in-neighbor according to the cascade model. The probability that a node
//! `u` lands in the set equals the probability that `u` would activate `v`
//! in a forward cascade, which is what makes `n · Pr[S ∩ R ≠ ∅]` an
//! unbiased influence estimator (Lemma 1).
//!
//! [`RrSampler`] bundles a graph with a generation [`RrStrategy`] and any
//! preprocessed index that strategy needs; [`RrContext`] holds the
//! reusable scratch state (epoch-stamped visited array, BFS queue, output
//! buffer) so generating millions of sets allocates nothing per set.
//!
//! Every strategy supports *sentinel stopping* (paper Algorithm 5): once a
//! sentinel node is activated the traversal halts immediately, which is
//! how HIST shrinks average RR-set sizes by orders of magnitude.

mod ic;
mod lt;

use rand::Rng;
use subsim_graph::{Graph, LtIndex, NodeId};
use subsim_sampling::BucketJumpSampler;

/// How RR sets are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrStrategy {
    /// Paper Algorithm 2: flip one coin per incoming edge of every
    /// activated node. `O(Σ d_in)` over activated nodes.
    VanillaIc,
    /// Paper Algorithm 3 / Section 3.3: geometric-skip subset sampling
    /// (per-node-uniform weights) or the index-free sorted sampler
    /// (per-edge weights). `O(Σ (1 + μ))` over activated nodes.
    SubsimIc,
    /// SUBSIM with the bucket-jump index (paper Lemma 5 + Walker alias):
    /// `O(Σ (1 + μ))` even for skewed weights, at the price of an `O(m)`
    /// preprocessing pass. Falls back to plain SUBSIM on uniform graphs.
    SubsimBucketIc,
    /// Linear Threshold: a reverse random walk picking at most one
    /// in-neighbor per step (live-edge characterization), `O(1)` per step
    /// via per-node alias tables.
    Lt,
}

/// Reusable scratch state for RR generation.
///
/// `cost` accumulates the paper's cost proxy: incoming edges *examined*
/// for the vanilla strategy, random draws (geometric landings + per-node
/// setup) for SUBSIM, steps for LT. Wall-clock benchmarks measure real
/// time; this counter lets tests assert the asymptotic claims directly.
#[derive(Debug, Clone)]
pub struct RrContext {
    visited: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
    buf: Vec<NodeId>,
    sentinel: Vec<bool>,
    sentinel_active: bool,
    /// Cumulative cost proxy across all sets generated with this context.
    pub cost: u64,
    /// Number of generated sets that terminated on a sentinel hit.
    pub sentinel_hits: u64,
}

impl RrContext {
    /// Creates scratch state for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        RrContext {
            visited: vec![0; n],
            epoch: 0,
            queue: Vec::new(),
            buf: Vec::new(),
            sentinel: Vec::new(),
            sentinel_active: false,
            cost: 0,
            sentinel_hits: 0,
        }
    }

    /// Installs a sentinel set: subsequent generations stop as soon as any
    /// of these nodes is activated (paper Algorithm 5).
    pub fn set_sentinel(&mut self, nodes: &[NodeId]) {
        self.sentinel.clear();
        self.sentinel.resize(self.visited.len(), false);
        for &v in nodes {
            self.sentinel[v as usize] = true;
        }
        self.sentinel_active = !nodes.is_empty();
    }

    /// Removes the sentinel set.
    pub fn clear_sentinel(&mut self) {
        self.sentinel_active = false;
    }

    /// Whether a sentinel set is installed.
    pub fn sentinel_active(&self) -> bool {
        self.sentinel_active
    }

    /// The RR set produced by the most recent generation.
    pub fn last(&self) -> &[NodeId] {
        &self.buf
    }

    /// Resets the cost/hit counters (the visited epoch is unaffected).
    pub fn reset_counters(&mut self) {
        self.cost = 0;
        self.sentinel_hits = 0;
    }

    #[inline]
    fn is_sentinel(&self, v: NodeId) -> bool {
        self.sentinel_active && self.sentinel[v as usize]
    }

    /// Starts a new generation: clears the buffer and bumps the epoch.
    fn begin(&mut self) {
        self.buf.clear();
        self.queue.clear();
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` visited; returns `true` if it was not visited this epoch.
    #[inline]
    fn visit(&mut self, v: NodeId) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// A graph bound to an RR-generation strategy, with any preprocessed
/// per-node index the strategy requires.
///
/// ```
/// use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
/// use subsim_graph::{generators, WeightModel};
/// use subsim_sampling::rng_from_seed;
///
/// let g = generators::cycle_graph(8, WeightModel::Wc);
/// let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
/// let mut ctx = RrContext::new(g.n());
/// let mut rng = rng_from_seed(5);
/// let size = sampler.generate(&mut ctx, &mut rng);
/// assert_eq!(size, ctx.last().len());
/// ```
pub struct RrSampler<'g> {
    g: &'g Graph,
    strategy: RrStrategy,
    /// Per-node bucket-jump samplers (only for `SubsimBucketIc` on
    /// per-edge-weight graphs).
    bucket: Option<Vec<Option<BucketJumpSampler>>>,
    /// LT alias index (only for `Lt`).
    lt: Option<LtIndex>,
}

impl<'g> RrSampler<'g> {
    /// Binds `g` to `strategy`, building indexes where needed
    /// (`SubsimBucketIc`: `O(m)`; `Lt`: `O(m)`).
    pub fn new(g: &'g Graph, strategy: RrStrategy) -> Self {
        let bucket = match strategy {
            RrStrategy::SubsimBucketIc if !g.has_uniform_in_probs() => {
                Some(ic::build_bucket_index(g))
            }
            _ => None,
        };
        let lt = matches!(strategy, RrStrategy::Lt).then(|| LtIndex::new(g));
        RrSampler {
            g,
            strategy,
            bucket,
            lt,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The bound strategy.
    pub fn strategy(&self) -> RrStrategy {
        self.strategy
    }

    /// Generates one RR set for a **uniformly random root**; the nodes are
    /// left in `ctx.last()` and the size is returned.
    pub fn generate<R: Rng + ?Sized>(&self, ctx: &mut RrContext, rng: &mut R) -> usize {
        let root = rng.gen_range(0..self.g.n()) as NodeId;
        self.generate_from(ctx, rng, root)
    }

    /// Generates one RR set rooted at `root`.
    pub fn generate_from<R: Rng + ?Sized>(
        &self,
        ctx: &mut RrContext,
        rng: &mut R,
        root: NodeId,
    ) -> usize {
        debug_assert!((root as usize) < self.g.n());
        ctx.begin();
        ctx.visit(root);
        ctx.buf.push(root);
        if ctx.is_sentinel(root) {
            ctx.sentinel_hits += 1;
            return 1;
        }
        match self.strategy {
            RrStrategy::VanillaIc => ic::traverse_vanilla(self.g, ctx, rng),
            RrStrategy::SubsimIc => ic::traverse_subsim(self.g, ctx, rng),
            RrStrategy::SubsimBucketIc => match &self.bucket {
                Some(index) => ic::traverse_bucket(self.g, index, ctx, rng),
                None => ic::traverse_subsim(self.g, ctx, rng),
            },
            RrStrategy::Lt => lt::traverse_lt(
                self.g,
                self.lt.as_ref().expect("LT index built in new()"),
                ctx,
                rng,
            ),
        }
        ctx.buf.len()
    }
}

#[cfg(test)]
mod tests;

/// Shared fixture for cross-module tests: a small heavy-tailed WC graph.
#[cfg(test)]
pub(crate) fn tests_support_graph() -> Graph {
    subsim_graph::generators::barabasi_albert(120, 3, subsim_graph::WeightModel::Wc, 91)
}
