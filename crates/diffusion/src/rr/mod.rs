//! Reverse-reachable set generation.
//!
//! A random RR set (paper Section 2.2) is built by sampling a uniform root
//! `v` and traversing *incoming* edges backwards, activating each
//! in-neighbor according to the cascade model. The probability that a node
//! `u` lands in the set equals the probability that `u` would activate `v`
//! in a forward cascade, which is what makes `n · Pr[S ∩ R ≠ ∅]` an
//! unbiased influence estimator (Lemma 1).
//!
//! [`RrSampler`] bundles a graph with a generation [`RrStrategy`] and any
//! preprocessed index that strategy needs; [`RrContext`] holds the
//! reusable scratch state (epoch-stamped visited array, BFS queue, output
//! buffer) so generating millions of sets allocates nothing per set.
//!
//! Every strategy supports *sentinel stopping* (paper Algorithm 5): once a
//! sentinel node is activated the traversal halts immediately, which is
//! how HIST shrinks average RR-set sizes by orders of magnitude.

mod frontier;
mod ic;
mod lt;

use rand::Rng;
use subsim_graph::{Graph, LtIndex, NodeId};
use subsim_sampling::BucketJumpSampler;

/// How RR sets are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrStrategy {
    /// Paper Algorithm 2: flip one coin per incoming edge of every
    /// activated node. `O(Σ d_in)` over activated nodes.
    VanillaIc,
    /// Paper Algorithm 3 / Section 3.3: geometric-skip subset sampling
    /// (per-node-uniform weights) or the index-free sorted sampler
    /// (per-edge weights). `O(Σ (1 + μ))` over activated nodes.
    SubsimIc,
    /// SUBSIM with the bucket-jump index (paper Lemma 5 + Walker alias):
    /// `O(Σ (1 + μ))` even for skewed weights, at the price of an `O(m)`
    /// preprocessing pass. Falls back to plain SUBSIM on uniform graphs.
    SubsimBucketIc,
    /// Linear Threshold: a reverse random walk picking at most one
    /// in-neighbor per step (live-edge characterization), `O(1)` per step
    /// via per-node alias tables.
    Lt,
}

/// Packed sentinel membership: one bit per node in `u64` words, with
/// dirty-word tracking so re-installing a set of the same graph size
/// clears only the words the previous set touched instead of re-zeroing
/// `n` bits per install (the serving stack re-installs the sentinel once
/// per pool batch).
#[derive(Debug, Clone, Default)]
struct SentinelBits {
    words: Vec<u64>,
    /// Word indexes holding at least one set bit, each recorded once.
    dirty: Vec<u32>,
}

impl SentinelBits {
    /// Empties the set, sized for `n` nodes: same-size reuse clears only
    /// the dirty words, a size change reallocates zeroed storage.
    fn reset(&mut self, n: usize) {
        let want = n.div_ceil(64);
        if self.words.len() == want {
            for &w in &self.dirty {
                self.words[w as usize] = 0;
            }
        } else {
            self.words.clear();
            self.words.resize(want, 0);
        }
        self.dirty.clear();
    }

    #[inline]
    fn insert(&mut self, v: NodeId) {
        let w = (v >> 6) as usize;
        if self.words[w] == 0 {
            self.dirty.push(w as u32);
        }
        self.words[w] |= 1u64 << (v & 63);
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        (self.words[(v >> 6) as usize] >> (v & 63)) & 1 != 0
    }
}

/// Reusable scratch state for RR generation.
///
/// `cost` accumulates the paper's cost proxy: incoming edges *examined*
/// for the vanilla strategy, random draws (geometric landings + per-node
/// setup) for SUBSIM, steps for LT. Wall-clock benchmarks measure real
/// time; this counter lets tests assert the asymptotic claims directly.
///
/// The `frontier_*` fields record per-level width telemetry of the flat
/// frontier kernel (zero when generation took the scalar path).
#[derive(Debug, Clone)]
pub struct RrContext {
    visited: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
    buf: Vec<NodeId>,
    sentinel: SentinelBits,
    sentinel_active: bool,
    /// Cumulative cost proxy across all sets generated with this context.
    pub cost: u64,
    /// Number of generated sets that terminated on a sentinel hit.
    pub sentinel_hits: u64,
    /// Frontier levels expanded by the flat kernel across all sets.
    pub frontier_levels: u64,
    /// Summed frontier widths across all levels (`width_sum / levels` is
    /// the mean parallelism the level-synchronous kernel exposed).
    pub frontier_width_sum: u64,
    /// Widest single frontier level observed.
    pub frontier_peak_width: u64,
}

impl RrContext {
    /// Creates scratch state for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        RrContext {
            visited: vec![0; n],
            epoch: 0,
            queue: Vec::new(),
            buf: Vec::new(),
            sentinel: SentinelBits::default(),
            sentinel_active: false,
            cost: 0,
            sentinel_hits: 0,
            frontier_levels: 0,
            frontier_width_sum: 0,
            frontier_peak_width: 0,
        }
    }

    /// Installs a sentinel set: subsequent generations stop as soon as any
    /// of these nodes is activated (paper Algorithm 5).
    pub fn set_sentinel(&mut self, nodes: &[NodeId]) {
        self.sentinel.reset(self.visited.len());
        for &v in nodes {
            self.sentinel.insert(v);
        }
        self.sentinel_active = !nodes.is_empty();
    }

    /// Removes the sentinel set.
    pub fn clear_sentinel(&mut self) {
        self.sentinel_active = false;
    }

    /// Whether a sentinel set is installed.
    pub fn sentinel_active(&self) -> bool {
        self.sentinel_active
    }

    /// The RR set produced by the most recent generation.
    pub fn last(&self) -> &[NodeId] {
        &self.buf
    }

    /// Resets the cost/hit/frontier counters (the visited epoch is
    /// unaffected).
    pub fn reset_counters(&mut self) {
        self.cost = 0;
        self.sentinel_hits = 0;
        self.frontier_levels = 0;
        self.frontier_width_sum = 0;
        self.frontier_peak_width = 0;
    }

    #[inline]
    fn is_sentinel(&self, v: NodeId) -> bool {
        self.sentinel_active && self.sentinel.contains(v)
    }

    /// Records one expanded frontier level of `width` entries.
    #[inline]
    fn note_level(&mut self, width: usize) {
        self.frontier_levels += 1;
        self.frontier_width_sum += width as u64;
        self.frontier_peak_width = self.frontier_peak_width.max(width as u64);
    }

    /// Records `steps` width-1 levels in one shot: the LT chain kernel
    /// batches its telemetry out of the hot loop, where a per-step
    /// [`Self::note_level`] call is measurable against the two-load
    /// step body.
    #[inline]
    fn note_chain(&mut self, steps: u64) {
        self.frontier_levels += steps;
        self.frontier_width_sum += steps;
        if steps > 0 {
            self.frontier_peak_width = self.frontier_peak_width.max(1);
        }
    }

    /// Starts a new generation: clears the buffer and bumps the epoch.
    fn begin(&mut self) {
        self.buf.clear();
        self.queue.clear();
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` visited; returns `true` if it was not visited this epoch.
    #[inline]
    fn visit(&mut self, v: NodeId) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// A graph bound to an RR-generation strategy, with any preprocessed
/// per-node index the strategy requires.
///
/// ```
/// use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
/// use subsim_graph::{generators, WeightModel};
/// use subsim_sampling::rng_from_seed;
///
/// let g = generators::cycle_graph(8, WeightModel::Wc);
/// let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
/// let mut ctx = RrContext::new(g.n());
/// let mut rng = rng_from_seed(5);
/// let size = sampler.generate(&mut ctx, &mut rng);
/// assert_eq!(size, ctx.last().len());
/// ```
pub struct RrSampler<'g> {
    g: &'g Graph,
    strategy: RrStrategy,
    /// Per-node bucket-jump samplers (only for `SubsimBucketIc` on
    /// per-edge-weight graphs).
    bucket: Option<Vec<Option<BucketJumpSampler>>>,
    /// LT alias index (only for `Lt`).
    lt: Option<LtIndex>,
    /// Flat-frontier kernel index (`None` for graphs too large for `u32`
    /// offsets and for samplers built via [`RrSampler::scalar`]).
    frontier: Option<frontier::FrontierIndex>,
}

impl<'g> RrSampler<'g> {
    /// Binds `g` to `strategy`, building indexes where needed
    /// (`SubsimBucketIc`: `O(m)`; `Lt`: `O(m)`; the flat-frontier kernel:
    /// `O(n + m/64)` for the `u32` offsets and skipper bank).
    pub fn new(g: &'g Graph, strategy: RrStrategy) -> Self {
        let mut sampler = Self::scalar(g, strategy);
        sampler.frontier = frontier::FrontierIndex::build(g, strategy, sampler.lt.as_ref());
        sampler
    }

    /// Binds `g` to `strategy` **without** the flat-frontier kernel:
    /// every generation takes the scalar queue walk. The two paths are
    /// bit-identical by construction (`tests/frontier.rs` pins this); the
    /// scalar sampler survives as the differential reference and as the
    /// baseline arm of `experiments bench-pr8`.
    pub fn scalar(g: &'g Graph, strategy: RrStrategy) -> Self {
        let bucket = match strategy {
            RrStrategy::SubsimBucketIc if !g.has_uniform_in_probs() => {
                Some(ic::build_bucket_index(g))
            }
            _ => None,
        };
        let lt = matches!(strategy, RrStrategy::Lt).then(|| LtIndex::new(g));
        RrSampler {
            g,
            strategy,
            bucket,
            lt,
            frontier: None,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The bound strategy.
    pub fn strategy(&self) -> RrStrategy {
        self.strategy
    }

    /// Whether generation runs through the flat-frontier kernel.
    pub fn uses_frontier(&self) -> bool {
        self.frontier.is_some()
    }

    /// Generates one RR set for a **uniformly random root**; the nodes are
    /// left in `ctx.last()` and the size is returned.
    pub fn generate<R: Rng + ?Sized>(&self, ctx: &mut RrContext, rng: &mut R) -> usize {
        let root = rng.gen_range(0..self.g.n()) as NodeId;
        self.generate_from(ctx, rng, root)
    }

    /// [`RrSampler::generate`] forced down the scalar queue walk even when
    /// a frontier kernel is built. Consumes the RNG stream identically.
    pub fn generate_scalar<R: Rng + ?Sized>(&self, ctx: &mut RrContext, rng: &mut R) -> usize {
        let root = rng.gen_range(0..self.g.n()) as NodeId;
        self.generate_from_scalar(ctx, rng, root)
    }

    /// Generates one RR set rooted at `root`.
    pub fn generate_from<R: Rng + ?Sized>(
        &self,
        ctx: &mut RrContext,
        rng: &mut R,
        root: NodeId,
    ) -> usize {
        if !self.start(ctx, root) {
            return 1;
        }
        match &self.frontier {
            Some(idx) => frontier::traverse(self.g, idx, self.bucket.as_deref(), ctx, rng),
            None => self.traverse_scalar(ctx, rng),
        }
        ctx.buf.len()
    }

    /// [`RrSampler::generate_from`] forced down the scalar queue walk.
    pub fn generate_from_scalar<R: Rng + ?Sized>(
        &self,
        ctx: &mut RrContext,
        rng: &mut R,
        root: NodeId,
    ) -> usize {
        if !self.start(ctx, root) {
            return 1;
        }
        self.traverse_scalar(ctx, rng);
        ctx.buf.len()
    }

    /// Begins a generation rooted at `root`; returns `false` when the root
    /// itself is a sentinel and the set is complete.
    fn start(&self, ctx: &mut RrContext, root: NodeId) -> bool {
        debug_assert!((root as usize) < self.g.n());
        ctx.begin();
        ctx.visit(root);
        ctx.buf.push(root);
        if ctx.is_sentinel(root) {
            ctx.sentinel_hits += 1;
            return false;
        }
        true
    }

    fn traverse_scalar<R: Rng + ?Sized>(&self, ctx: &mut RrContext, rng: &mut R) {
        match self.strategy {
            RrStrategy::VanillaIc => ic::traverse_vanilla(self.g, ctx, rng),
            RrStrategy::SubsimIc => ic::traverse_subsim(self.g, ctx, rng),
            RrStrategy::SubsimBucketIc => match &self.bucket {
                Some(index) => ic::traverse_bucket(self.g, index, ctx, rng),
                None => ic::traverse_subsim(self.g, ctx, rng),
            },
            RrStrategy::Lt => lt::traverse_lt(
                self.g,
                self.lt.as_ref().expect("LT index built in new()"),
                ctx,
                rng,
            ),
        }
    }
}

#[cfg(test)]
mod tests;

/// Shared fixture for cross-module tests: a small heavy-tailed WC graph.
#[cfg(test)]
pub(crate) fn tests_support_graph() -> Graph {
    subsim_graph::generators::barabasi_albert(120, 3, subsim_graph::WeightModel::Wc, 91)
}
