//! LT-model reverse traversal.
//!
//! Under the live-edge characterization of Linear Threshold, every node
//! keeps exactly one incoming edge, chosen with probability `p(u, v)` each
//! (none with probability `1 - Σp`). The RR set of a root is therefore a
//! reverse *path*: repeatedly follow the single live in-edge until it is
//! absent or revisits a node. Each step costs `O(1)` via the per-node
//! alias tables of [`subsim_graph::LtIndex`], which is why the paper's
//! `O(k·n·log n/ε²)` bound holds for LT without any algorithmic change.

use super::RrContext;
use rand::Rng;
use subsim_graph::{Graph, LtIndex};

/// Walks the reverse live-edge path from the root already in `ctx.buf`.
pub(super) fn traverse_lt<R: Rng + ?Sized>(
    g: &Graph,
    lt: &LtIndex,
    ctx: &mut RrContext,
    rng: &mut R,
) {
    let mut cur = ctx.buf[0];
    loop {
        ctx.cost += 1;
        let Some(u) = lt.sample_in_neighbor(g, rng, cur) else {
            return;
        };
        if !ctx.visit(u) {
            // Revisit: the path has closed a cycle; everything reachable
            // further back is already in the set.
            return;
        }
        ctx.buf.push(u);
        if ctx.is_sentinel(u) {
            ctx.sentinel_hits += 1;
            return;
        }
        cur = u;
    }
}
