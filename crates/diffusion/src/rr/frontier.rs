//! Flat, structure-of-arrays frontier kernel for reverse traversals.
//!
//! The scalar walk in [`super::ic`] chases one queue entry at a time
//! through accessor calls: per node it re-derives the in-neighbor slice,
//! re-matches the weight-storage enum, re-computes the `ln(1 - p)`
//! skipper setup, and resolves every Bernoulli coin and geometric skip
//! through `f64` math. This module is the gIM-style CPU analog: the BFS
//! is expanded **level-synchronously** over raw reverse-CSR arrays
//! prepared once per `(graph, strategy)` —
//!
//! - the output buffer itself is the frontier array: in a BFS the nodes
//!   appended at level `l` are exactly the level-`l + 1` frontier, so the
//!   kernel walks `ctx.buf` in place and never maintains the separate
//!   BFS queue (one fewer push and one fewer array touched per
//!   activation),
//! - offsets narrowed to `u32` (half the cache footprint of the `usize`
//!   originals; node ids stay `u32` end-to-end — no `usize` widening in
//!   the inner loop beyond the final index),
//! - the weight-mode branch resolved at build time into one specialized
//!   kernel per mode (no per-node enum match),
//! - geometric-skip setup batched into a per-node [`SkipperBank`] built
//!   once per graph instead of once per activation,
//! - Bernoulli coins resolved in the integer domain: `gen::<f64>() < p`
//!   is `(next_u64() >> 11) · 2⁻⁵³ < p`, both sides exact in `f64`, so
//!   the coin equals `(next_u64() >> 11) < ⌈p · 2⁵³⌉` — one shift and one
//!   integer compare against a per-node (or per-edge) threshold from the
//!   `coin` table, no int→float conversion, no float compare (see
//!   [`coin_threshold`]),
//! - geometric draws that overshoot the remaining horizon — the *last*
//!   draw of every skip loop, and in sparse regimes most draws — resolved
//!   the same way: the `miss` table stores, per CSR edge slot, the exact
//!   count of unit samples whose skip would land past the end, found by
//!   binary search over the skipper's own arithmetic (monotone in the
//!   sample), so the common "no landing" case costs one integer compare
//!   instead of a logarithm (see [`miss_threshold`]),
//! - the next frontier entry's offset row software-prefetched one entry
//!   ahead of use,
//! - sentinel membership probed from the packed bitset in
//!   [`RrContext`](super::RrContext),
//! - bounds checks lifted out of the inner loops: every index is covered
//!   by a CSR invariant (see the `SAFETY` comments), which the builder
//!   validates once per graph.
//!
//! **Bit-identity.** The kernel expands buffer positions `0, 1, 2, …` in
//! exactly the scalar queue's order (the scalar queue holds the same
//! nodes in the same order as the output buffer, save for a trailing
//! sentinel hit — after which both paths stop), consumes exactly one
//! `next_u64` per coin/draw under the same branch structure
//! (`SCAN_THRESHOLD` is the shared constant), and the integer thresholds
//! decide each coin and overshoot identically to the `f64` comparisons
//! they replace, so for every `(seed, root)` the produced set, the cost
//! counter, and the RNG stream are bitwise identical to the scalar walk —
//! `tests/frontier.rs` pins this differentially. Chunk determinism is
//! therefore inherited unchanged: chunk `c` stays a pure function of
//! `(seed, c)` no matter which path or worker generated it.
//!
//! **LT.** The Linear-Threshold reverse walk is a chain, not a BFS, so
//! it gets a dedicated kernel ([`lt_chain`]) instead of the level loop:
//! the scalar walk's per-node `Option<AliasTable>` chase and `f64`
//! comparisons are replaced by flattened per-CSR-edge-slot alias
//! thresholds and targets plus per-node continue coins, all decided in
//! the integer domain — same draws, same order, bit-identical stream.

use super::ic::{sample_per_edge, SCAN_THRESHOLD};
use super::{RrContext, RrStrategy};
use rand::Rng;
use std::collections::HashMap;
use subsim_graph::{Graph, LtIndex, NodeId};
use subsim_sampling::geometric::{GeometricSkipper, NEVER};
use subsim_sampling::{BucketJumpSampler, SkipperBank, SortedSubsetSampler};

/// `rand`'s `Standard` `f64` scale: unit samples are `x · 2⁻⁵³` for
/// `x = next_u64() >> 11 ∈ [0, 2⁵³)`.
const UNIT: f64 = 1.0 / (1u64 << 53) as f64;
/// Exclusive upper bound of the 53-bit sample domain.
const X_MAX: u64 = 1u64 << 53;

/// Threshold `T` such that `(next_u64() >> 11) < T` decides exactly like
/// `gen::<f64>() < p`.
///
/// The unit sample `x · 2⁻⁵³` is exact (53-bit integer scaled by a power
/// of two), so the float compare equals the real-number compare
/// `x < p · 2⁵³`; and `p · 2⁵³` is itself exact in `f64` (pure exponent
/// shift), so for integer `x` that is `x < ⌈p · 2⁵³⌉`. Degenerate rates:
/// `p >= 1` accepts every sample (`T = u64::MAX`, unreachable since
/// `x < 2⁵³`), `p <= 0` (or NaN) accepts none.
fn coin_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p > 0.0 {
        (p * X_MAX as f64).ceil() as u64
    } else {
        0
    }
}

/// Exact count of unit samples whose geometric draw overshoots horizon
/// `h` — i.e. `(next_u64() >> 11) < miss_threshold(sk, h)` decides
/// "this skip loop terminates without landing" exactly like running
/// [`GeometricSkipper::skip`] and comparing the result against `h`.
///
/// `skip` is monotone non-increasing in the unit sample (`ln` is
/// monotone, the multiply by the negative `1 / ln(1 - p)` flips it, and
/// `ceil`/`max` preserve it), so the overshoot predicate is a step
/// function of `x`; the boundary is found by binary search evaluating
/// **the skipper's own arithmetic**, never a rederivation of it.
fn miss_threshold(sk: GeometricSkipper, h: u64) -> u64 {
    // NEVER (= u64::MAX) also counts as an overshoot for any real horizon.
    let overshoots = |x: u64| sk.skip_from(x as f64 * UNIT) > h;
    if !overshoots(0) {
        return 0;
    }
    if overshoots(X_MAX - 1) {
        return X_MAX;
    }
    // Invariant: overshoots(lo) && !overshoots(hi).
    let (mut lo, mut hi) = (0u64, X_MAX - 1);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if overshoots(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Which specialized kernel the strategy × weight-mode pair resolved to.
#[derive(Debug, Clone, Copy)]
enum Mode {
    VanillaUniform,
    VanillaPerEdge,
    SubsimUniform,
    SubsimPerEdge,
    BucketPerEdge,
    /// LT reverse chain: the "frontier" is always one node wide, but the
    /// per-step alias draw runs over flattened per-edge-slot tables with
    /// integer-domain coins instead of chasing `Option<AliasTable>`
    /// objects (see [`lt_chain`]).
    Lt,
}

/// Per-`(graph, strategy)` state of the flat kernel.
#[derive(Debug)]
pub(super) struct FrontierIndex {
    /// Reverse-CSR offsets narrowed to `u32`.
    offsets: Vec<u32>,
    /// Per-node geometric skippers (`SubsimUniform` only).
    bank: Option<SkipperBank>,
    /// Integer coin thresholds: per node (`VanillaUniform`,
    /// `SubsimUniform`) or per edge (`VanillaPerEdge`); empty otherwise.
    coin: Vec<u64>,
    /// Per-CSR-edge-slot overshoot boundaries (`SubsimUniform` only):
    /// entry `lo + c` decides the draw taken at cursor `c`, whose
    /// remaining horizon is `degree - c`.
    miss: Vec<u64>,
    /// Per-node chain-step records (`Lt` only): CSR base, in-degree, and
    /// continue coin packed into one 16-byte entry so a chain step pays a
    /// single node-metadata load instead of three (offsets ×2, coin,
    /// tabled flag). Bit 63 of the coin is the [`LT_TABLED`] flag — coin
    /// thresholds are ≤ 2⁵³, so the top bits are free.
    lt_nodes: Vec<LtNode>,
    /// Per-CSR-edge-slot alias records (`Lt` on per-edge weights): the
    /// acceptance threshold `⌈prob[col] · 2⁵³⌉` plus the *pre-resolved
    /// source node* of both outcomes — the column itself and its alias
    /// redirect — so one 16-byte load finishes the step with no chase
    /// through a separate alias-column array and the CSR source list.
    /// Empty for uniform-weight graphs (the scalar path samples those
    /// with a bare `gen_range`, no table).
    lt_slots: Vec<LtSlot>,
    mode: Mode,
}

/// Flag bit stolen from the top of [`LtNode::coin`]: whether the scalar
/// path draws this node's step through an alias table (vs. the uniform
/// `gen_range` fallback it uses when no table was built).
const LT_TABLED: u64 = 1 << 63;

/// Packed per-node record for the LT chain kernel. 16 bytes — one cache
/// line covers four nodes' worth of chain-step metadata.
#[derive(Debug, Clone, Copy)]
struct LtNode {
    /// Reverse-CSR base of this node's in-edge slots.
    lo: u32,
    /// In-degree (`hi - lo`, precomputed).
    d: u32,
    /// Continue-the-walk threshold `⌈min(Σp, 1) · 2⁵³⌉`, with
    /// [`LT_TABLED`] in bit 63.
    coin: u64,
}

/// Packed per-edge-slot record for the LT chain kernel: drawing column
/// `col` resolves to `src` when the unit sample accepts and `alias_src`
/// when it redirects — the sources are baked in at build time, so the
/// kernel never re-indexes the CSR source array.
#[derive(Debug, Clone, Copy, Default)]
struct LtSlot {
    /// Alias acceptance threshold `⌈prob[col] · 2⁵³⌉`.
    accept: u64,
    /// Source node of this column.
    src: u32,
    /// Source node of this column's alias redirect.
    alias_src: u32,
}

impl FrontierIndex {
    /// Builds the kernel index, or `None` when the edge count does not
    /// fit `u32` offsets.
    ///
    /// `lt` is the sampler's alias index, required for
    /// [`RrStrategy::Lt`] (its tables are flattened into the per-slot
    /// `lt_accept`/`lt_alias` arrays) and ignored otherwise.
    ///
    /// Cost: `O(n + m)` for the offsets, bank, and coin tables, plus
    /// `O(log 2⁵³)` skipper evaluations per distinct `(rate, horizon)`
    /// pair for the overshoot boundaries (memoized — weight models with
    /// few distinct rates, e.g. WC's `1/d`, share nearly all of them).
    pub(super) fn build(
        g: &Graph,
        strategy: RrStrategy,
        lt: Option<&LtIndex>,
    ) -> Option<FrontierIndex> {
        if g.m() >= u32::MAX as usize {
            return None;
        }
        let uniform = g.has_uniform_in_probs();
        let mode = match (strategy, uniform) {
            (RrStrategy::Lt, _) => Mode::Lt,
            (RrStrategy::VanillaIc, true) => Mode::VanillaUniform,
            (RrStrategy::VanillaIc, false) => Mode::VanillaPerEdge,
            // Bucket-IC on uniform graphs falls back to plain SUBSIM in
            // the scalar dispatch; the kernel mirrors that.
            (RrStrategy::SubsimIc | RrStrategy::SubsimBucketIc, true) => Mode::SubsimUniform,
            (RrStrategy::SubsimIc, false) => Mode::SubsimPerEdge,
            (RrStrategy::SubsimBucketIc, false) => Mode::BucketPerEdge,
        };
        let offsets: Vec<u32> = g.in_csr_offsets().iter().map(|&o| o as u32).collect();
        let mut bank = None;
        let mut coin = Vec::new();
        let mut miss = Vec::new();
        let mut lt_nodes = Vec::new();
        let mut lt_slots = Vec::new();
        match mode {
            Mode::VanillaUniform => {
                let probs = g.uniform_in_probs().expect("uniform mode");
                coin = probs.iter().map(|&p| coin_threshold(p)).collect();
            }
            Mode::VanillaPerEdge => {
                let probs = g.per_edge_in_probs().expect("per-edge mode");
                coin = probs.iter().map(|&p| coin_threshold(p)).collect();
            }
            Mode::SubsimUniform => {
                let probs = g.uniform_in_probs().expect("uniform mode");
                let b = SkipperBank::new(probs.iter().copied());
                coin = probs.iter().map(|&p| coin_threshold(p)).collect();
                miss = vec![0u64; g.m()];
                let mut memo: HashMap<(u64, u64), u64> = HashMap::new();
                for v in 0..g.n() {
                    let p = probs[v];
                    if p <= 0.0 || p >= SCAN_THRESHOLD {
                        continue;
                    }
                    let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                    let sk = b.get(v);
                    for (slot, m) in miss[lo..hi].iter_mut().enumerate() {
                        let h = (hi - lo - slot) as u64;
                        *m = *memo
                            .entry((p.to_bits(), h))
                            .or_insert_with(|| miss_threshold(sk, h));
                    }
                }
                bank = Some(b);
            }
            Mode::Lt => {
                let lt = lt.expect("LT samplers carry their alias index");
                // Continue-the-walk threshold: the scalar step draws one
                // unit sample and returns None when it lands at or above
                // min(Σp, 1) — so the chain continues iff the 53-bit
                // sample is < ⌈min(Σp, 1) · 2⁵³⌉.
                // Clamped to `X_MAX`: unit samples are 53-bit, so any
                // threshold ≥ 2⁵³ decides identically to the saturated
                // `u64::MAX` that `coin_threshold` returns for p ≥ 1 —
                // and the clamp keeps bit 63 free for [`LT_TABLED`].
                lt_nodes = (0..g.n())
                    .map(|v| LtNode {
                        lo: offsets[v],
                        d: offsets[v + 1] - offsets[v],
                        coin: coin_threshold(lt.in_weight_sum(v as NodeId).min(1.0)).min(X_MAX),
                    })
                    .collect();
                if !uniform {
                    let sources = g.in_csr_sources();
                    lt_slots = vec![LtSlot::default(); g.m()];
                    for v in 0..g.n() {
                        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                        // Untabled nodes draw a bare `gen_range` column,
                        // so every slot carries its own source.
                        for (slot, s) in lt_slots[lo..hi].iter_mut().enumerate() {
                            s.src = sources[lo + slot];
                        }
                        let Some(table) = lt.table(v as NodeId) else {
                            continue;
                        };
                        lt_nodes[v].coin |= LT_TABLED;
                        debug_assert_eq!(table.len(), g.in_degree(v as NodeId));
                        for (slot, (&p, &a)) in
                            table.probs().iter().zip(table.aliases()).enumerate()
                        {
                            lt_slots[lo + slot].accept = coin_threshold(p);
                            lt_slots[lo + slot].alias_src = sources[lo + a as usize];
                        }
                    }
                }
            }
            Mode::SubsimPerEdge | Mode::BucketPerEdge => {}
        }
        Some(FrontierIndex {
            offsets,
            bank,
            coin,
            miss,
            lt_nodes,
            lt_slots,
            mode,
        })
    }
}

/// Hints the cache that `*p` is about to be read. A pure performance
/// hint: prefetches never fault, so any address is fine.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` only hints the prefetcher; it performs no
    // memory access and cannot fault.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Activates `w` during frontier expansion: marks it visited, appends it
/// to the output buffer (which doubles as the next frontier level), and
/// probes the packed sentinel bitset. Returns `true` when a sentinel was
/// hit and the whole generation must stop.
///
/// Mirrors `ic::activate` exactly, minus the scalar queue push — the
/// kernel re-walks the buffer instead.
///
/// # Safety
///
/// `w` must be a valid node id (`w < n` for the graph that sized `ctx`).
/// Kernel callers only pass ids read out of the validated reverse CSR.
#[inline(always)]
unsafe fn activate_flat(ctx: &mut RrContext, w: NodeId) -> bool {
    // SAFETY: `w < n` per the function contract; `visited` has length `n`.
    let slot = unsafe { ctx.visited.get_unchecked_mut(w as usize) };
    if *slot == ctx.epoch {
        return false;
    }
    *slot = ctx.epoch;
    ctx.buf.push(w);
    if ctx.is_sentinel(w) {
        ctx.sentinel_hits += 1;
        return true;
    }
    false
}

/// Level-synchronous drive loop shared by all kernels.
///
/// Walks `ctx.buf` in level slices — the nodes appended while expanding
/// level `l` are exactly the level-`l + 1` frontier — prefetching the
/// *next* frontier entry's offset row while `expand` works on the
/// current one, and recording per-level width telemetry. `expand` is
/// called as `(ctx, rng, node, lo, hi)` with `lo..hi` the node's in-edge
/// range and returns `true` to abort the whole generation (sentinel
/// hit). Nodes with no in-edges are skipped before `expand`.
///
/// The flattened iteration order over buffer positions is `0, 1, 2, …` —
/// exactly the scalar queue walk's order — so any `expand` that consumes
/// the RNG like its scalar counterpart keeps the whole stream
/// bit-identical.
#[inline(always)]
fn drive<R: Rng + ?Sized>(
    offsets: &[u32],
    ctx: &mut RrContext,
    rng: &mut R,
    mut expand: impl FnMut(&mut RrContext, &mut R, usize, usize, usize) -> bool,
) {
    debug_assert_eq!(ctx.buf.len(), 1, "drive starts from the root alone");
    let mut level_start = 0usize;
    while level_start < ctx.buf.len() {
        let level_end = ctx.buf.len();
        ctx.note_level(level_end - level_start);
        for i in level_start..level_end {
            // SAFETY: `i < level_end <= buf.len()`, and the buffer only
            // ever holds CSR-validated node ids `< n`, so `u` indexes
            // `offsets` (length `n + 1`) in bounds — as does `u + 1`.
            let (u, lo, hi) = unsafe {
                let u = *ctx.buf.get_unchecked(i) as usize;
                if i + 1 < level_end {
                    let nx = *ctx.buf.get_unchecked(i + 1) as usize;
                    prefetch_read(offsets.as_ptr().add(nx));
                }
                (
                    u,
                    *offsets.get_unchecked(u) as usize,
                    *offsets.get_unchecked(u + 1) as usize,
                )
            };
            if lo == hi {
                continue;
            }
            if expand(ctx, rng, u, lo, hi) {
                return;
            }
        }
        level_start = level_end;
    }
}

/// Entry point: dispatches to the kernel resolved at build time. The
/// caller has already pushed the root into `ctx.buf` and cleared the
/// scratch (see `RrSampler::start`).
pub(super) fn traverse<R: Rng + ?Sized>(
    g: &Graph,
    idx: &FrontierIndex,
    bucket: Option<&[Option<BucketJumpSampler>]>,
    ctx: &mut RrContext,
    rng: &mut R,
) {
    match idx.mode {
        Mode::VanillaUniform => vanilla_uniform(g, idx, ctx, rng),
        Mode::VanillaPerEdge => vanilla_per_edge(g, idx, ctx, rng),
        Mode::SubsimUniform => subsim_uniform(g, idx, ctx, rng),
        Mode::SubsimPerEdge => subsim_per_edge(g, idx, ctx, rng),
        Mode::BucketPerEdge => bucket_per_edge(
            g,
            idx,
            bucket.expect("bucket mode implies a bucket index"),
            ctx,
            rng,
        ),
        Mode::Lt => lt_chain(g, idx, ctx, rng),
    }
}

/// The LT reverse chain over packed per-node and per-slot records.
///
/// LT's "frontier" degenerates to a single node per level (at most one
/// in-neighbor survives each step), so the level loop of [`drive`] is
/// replaced by a chain walk whose steps hop to *random* nodes — making
/// the walk memory-latency-bound, not compute-bound. The layout is
/// built for that: one 16-byte [`LtNode`] load yields the CSR base,
/// degree, continue coin, and tabled flag, and one 16-byte [`LtSlot`]
/// load yields the acceptance threshold plus the pre-resolved source of
/// both alias outcomes, so a step touches at most two data cache lines
/// (plus the visited stamp). Telemetry and the cost proxy accumulate in
/// registers and post once per chain.
///
/// **Bit-identity with [`super::lt::traverse_lt`]**, step by step:
/// `cost += 1`; a zero-in-degree node returns before any draw; one unit
/// sample decides continue-vs-stop against `⌈min(Σp,1)·2⁵³⌉` exactly
/// like the scalar `gen::<f64>() >= sum` test; a tabled node then draws
/// `gen_range(0..d)` for the column and one unit sample against the
/// column's acceptance threshold — the same two draws, in the same
/// order, deciding identically to `AliasTable::sample` — while an
/// untabled node draws only `gen_range(0..d)`; revisit and sentinel
/// handling mirror the scalar walk verbatim. Telemetry records one
/// width-1 level per expanded chain node.
fn lt_chain<R: Rng + ?Sized>(g: &Graph, idx: &FrontierIndex, ctx: &mut RrContext, rng: &mut R) {
    let sources = g.in_csr_sources();
    let nodes = &idx.lt_nodes;
    let slots = &idx.lt_slots;
    let per_edge = !slots.is_empty();
    let mut cur = ctx.buf[0] as usize;
    let mut steps = 0u64;
    loop {
        steps += 1;
        // SAFETY: `cur` is a CSR-validated node id (`< n`) and
        // `lt_nodes` has length `n`.
        let node = unsafe { *nodes.get_unchecked(cur) };
        let d = node.d as usize;
        if d == 0 {
            // Dead end: the scalar step returns None before drawing.
            break;
        }
        if (rng.next_u64() >> 11) >= (node.coin & !LT_TABLED) {
            // No in-neighbor chosen (probability 1 - min(Σp, 1)).
            break;
        }
        let lo = node.lo as usize;
        let col = rng.gen_range(0..d);
        // SAFETY (each arm): `col < d`, so `lo + col < m`; `lt_slots`
        // (when built) and `sources` both have length `m`.
        let u = if node.coin & LT_TABLED != 0 {
            let slot = unsafe { *slots.get_unchecked(lo + col) };
            if (rng.next_u64() >> 11) < slot.accept {
                slot.src
            } else {
                slot.alias_src
            }
        } else if per_edge {
            unsafe { slots.get_unchecked(lo + col).src }
        } else {
            unsafe { *sources.get_unchecked(lo + col) }
        };
        // The next iteration's first load is `lt_nodes[u]` — issue it
        // now, before the visited-stamp and sentinel work.
        prefetch_read(unsafe { nodes.as_ptr().add(u as usize) });
        if !ctx.visit(u) {
            // Revisit: the chain has closed a cycle.
            break;
        }
        ctx.buf.push(u);
        if ctx.is_sentinel(u) {
            ctx.sentinel_hits += 1;
            break;
        }
        cur = u as usize;
    }
    ctx.cost += steps;
    ctx.note_chain(steps);
}

fn vanilla_uniform<R: Rng + ?Sized>(
    g: &Graph,
    idx: &FrontierIndex,
    ctx: &mut RrContext,
    rng: &mut R,
) {
    let sources = g.in_csr_sources();
    let coin = &idx.coin;
    drive(&idx.offsets, ctx, rng, |ctx, rng, u, lo, hi| {
        ctx.cost += (hi - lo) as u64;
        // SAFETY: `u < n` (`coin` has length `n`) and `lo <= hi <= m` by
        // CSR offset monotonicity (`sources` has length `m`).
        let (t, nbrs) = unsafe { (*coin.get_unchecked(u), sources.get_unchecked(lo..hi)) };
        for &w in nbrs {
            if (rng.next_u64() >> 11) < t {
                // SAFETY: `w` comes from the validated CSR (`w < n`).
                if unsafe { activate_flat(ctx, w) } {
                    return true;
                }
            }
        }
        false
    });
}

fn vanilla_per_edge<R: Rng + ?Sized>(
    g: &Graph,
    idx: &FrontierIndex,
    ctx: &mut RrContext,
    rng: &mut R,
) {
    let sources = g.in_csr_sources();
    let coin = &idx.coin;
    drive(&idx.offsets, ctx, rng, |ctx, rng, _u, lo, hi| {
        ctx.cost += (hi - lo) as u64;
        // SAFETY: `lo <= hi <= m` by CSR offset monotonicity; `sources`
        // and the per-edge `coin` table both have length `m`.
        let (nbrs, ts) = unsafe { (sources.get_unchecked(lo..hi), coin.get_unchecked(lo..hi)) };
        for (&w, &t) in nbrs.iter().zip(ts) {
            if (rng.next_u64() >> 11) < t {
                // SAFETY: `w` comes from the validated CSR (`w < n`).
                if unsafe { activate_flat(ctx, w) } {
                    return true;
                }
            }
        }
        false
    });
}

fn subsim_uniform<R: Rng + ?Sized>(
    g: &Graph,
    idx: &FrontierIndex,
    ctx: &mut RrContext,
    rng: &mut R,
) {
    let sources = g.in_csr_sources();
    let probs = g
        .uniform_in_probs()
        .expect("uniform mode implies per-node rates");
    let bank = idx.bank.as_ref().expect("built for SubsimUniform");
    let coin = &idx.coin;
    let miss = &idx.miss;
    drive(&idx.offsets, ctx, rng, |ctx, rng, u, lo, hi| {
        // SAFETY: `u < n`; `probs`, `coin`, and the bank all have length
        // `n`, and `lo <= hi <= m` by CSR offset monotonicity.
        let (p, nbrs) = unsafe { (*probs.get_unchecked(u), sources.get_unchecked(lo..hi)) };
        if p <= 0.0 {
            ctx.cost += 1;
            return false;
        }
        if p >= SCAN_THRESHOLD {
            ctx.cost += nbrs.len() as u64;
            // The scalar path short-circuits `p >= 1.0 || coin` per edge;
            // hoisting the certain-success case out of the loop draws the
            // same (zero) coins.
            if p >= 1.0 {
                for &w in nbrs {
                    // SAFETY: `w` comes from the validated CSR.
                    if unsafe { activate_flat(ctx, w) } {
                        return true;
                    }
                }
            } else {
                // SAFETY: `u < n` as above.
                let t = unsafe { *coin.get_unchecked(u) };
                for &w in nbrs {
                    if (rng.next_u64() >> 11) < t {
                        // SAFETY: `w` comes from the validated CSR.
                        if unsafe { activate_flat(ctx, w) } {
                            return true;
                        }
                    }
                }
            }
            return false;
        }
        let skipper = bank.get(u);
        let d = nbrs.len() as u64;
        let mut cursor = 0u64;
        loop {
            ctx.cost += 1;
            if cursor == d {
                // Horizon exhausted: any skip (always >= 1) overshoots.
                // Consume the draw the scalar loop would, then stop.
                rng.next_u64();
                break;
            }
            let x = rng.next_u64() >> 11;
            // SAFETY: `cursor < d`, so `lo + cursor <= hi - 1 < m` and
            // the `miss` table (length `m`) is in bounds.
            if x < unsafe { *miss.get_unchecked(lo + cursor as usize) } {
                // The draw overshoots the remaining horizon (or is NEVER):
                // decided in the integer domain, no logarithm needed.
                break;
            }
            let skip = skipper.skip_from(x as f64 * UNIT);
            // The miss table already decided this draw lands, so these
            // two guards are never taken; they stay as real branches so
            // the unchecked neighbor index below never has to trust the
            // table's binary search for memory safety.
            debug_assert!(skip != NEVER && cursor + skip <= d);
            if skip == NEVER {
                break;
            }
            cursor += skip;
            if cursor > d {
                break;
            }
            // SAFETY: `1 <= cursor <= d = nbrs.len()`, and `w` comes from
            // the validated CSR.
            if unsafe { activate_flat(ctx, *nbrs.get_unchecked((cursor - 1) as usize)) } {
                return true;
            }
        }
        false
    });
}

fn subsim_per_edge<R: Rng + ?Sized>(
    g: &Graph,
    idx: &FrontierIndex,
    ctx: &mut RrContext,
    rng: &mut R,
) {
    let sources = g.in_csr_sources();
    let probs = g
        .per_edge_in_probs()
        .expect("per-edge mode implies per-edge rates");
    drive(&idx.offsets, ctx, rng, |ctx, rng, _u, lo, hi| {
        ctx.cost += 1;
        sample_per_edge(ctx, &sources[lo..hi], rng, |rng, visit| {
            SortedSubsetSampler::new(&probs[lo..hi]).sample_into(rng, visit)
        })
    });
}

fn bucket_per_edge<R: Rng + ?Sized>(
    g: &Graph,
    idx: &FrontierIndex,
    bucket: &[Option<BucketJumpSampler>],
    ctx: &mut RrContext,
    rng: &mut R,
) {
    let sources = g.in_csr_sources();
    drive(&idx.offsets, ctx, rng, |ctx, rng, u, lo, hi| {
        ctx.cost += 1;
        let Some(sampler) = &bucket[u] else {
            return false;
        };
        sample_per_edge(ctx, &sources[lo..hi], rng, |rng, visit| {
            sampler.sample_into(rng, visit)
        })
    });
}
