//! IC-model reverse traversals: vanilla (Algorithm 2), SUBSIM
//! (Algorithm 3 + Section 3.3), and the bucket-jump variant.

use super::RrContext;
use rand::Rng;
use subsim_graph::{Graph, InProbs, NodeId};
use subsim_sampling::geometric::{GeometricSkipper, NEVER};
use subsim_sampling::{BucketJumpSampler, SortedSubsetSampler};

/// Rate above which scanning in-neighbors directly beats geometric
/// skipping (mirrors `subsim_sampling::subset`'s threshold).
///
/// Shared by the scalar walk and the flat-frontier kernel — the two paths
/// must branch identically on every node or their RNG streams (and thus
/// their outputs) diverge.
pub(super) const SCAN_THRESHOLD: f64 = 0.25;

/// Outcome of activating one node during the reverse BFS.
pub(super) enum Activated {
    /// Keep traversing.
    Continue,
    /// A sentinel node was activated; the whole generation stops.
    Stop,
}

/// Activates `w` if unvisited: records it, checks the sentinel, enqueues.
#[inline]
pub(super) fn activate(ctx: &mut RrContext, w: NodeId) -> Activated {
    if ctx.visit(w) {
        ctx.buf.push(w);
        if ctx.is_sentinel(w) {
            ctx.sentinel_hits += 1;
            return Activated::Stop;
        }
        ctx.queue.push(w);
    }
    Activated::Continue
}

/// Vanilla traversal: one coin per incoming edge of each activated node.
pub(super) fn traverse_vanilla<R: Rng + ?Sized>(g: &Graph, ctx: &mut RrContext, rng: &mut R) {
    ctx.queue.push(ctx.buf[0]);
    let mut head = 0;
    while head < ctx.queue.len() {
        let u = ctx.queue[head];
        head += 1;
        let nbrs = g.in_neighbors(u);
        ctx.cost += nbrs.len() as u64;
        match g.in_probs(u) {
            InProbs::Uniform(p) => {
                for &w in nbrs {
                    if rng.gen::<f64>() < p {
                        if let Activated::Stop = activate(ctx, w) {
                            return;
                        }
                    }
                }
            }
            InProbs::PerEdge(ps) => {
                for (&w, &p) in nbrs.iter().zip(ps) {
                    if rng.gen::<f64>() < p {
                        if let Activated::Stop = activate(ctx, w) {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// SUBSIM traversal: geometric skips for per-node-uniform weights, the
/// index-free sorted sampler for per-edge weights.
pub(super) fn traverse_subsim<R: Rng + ?Sized>(g: &Graph, ctx: &mut RrContext, rng: &mut R) {
    ctx.queue.push(ctx.buf[0]);
    let mut head = 0;
    while head < ctx.queue.len() {
        let u = ctx.queue[head];
        head += 1;
        let nbrs = g.in_neighbors(u);
        if nbrs.is_empty() {
            continue;
        }
        match g.in_probs(u) {
            InProbs::Uniform(p) => {
                if p <= 0.0 {
                    ctx.cost += 1;
                    continue;
                }
                if p >= SCAN_THRESHOLD {
                    // Dense probabilities: direct Bernoulli per neighbor
                    // (a geometric skip of expected length < 4 costs more
                    // than the coins it saves).
                    ctx.cost += nbrs.len() as u64;
                    for &w in nbrs {
                        if p >= 1.0 || rng.gen::<f64>() < p {
                            if let Activated::Stop = activate(ctx, w) {
                                return;
                            }
                        }
                    }
                    continue;
                }
                let skipper = GeometricSkipper::new(p);
                let d = nbrs.len() as u64;
                let mut cursor = 0u64;
                loop {
                    ctx.cost += 1;
                    let skip = skipper.skip(rng);
                    if skip == NEVER {
                        break;
                    }
                    cursor += skip;
                    if cursor > d {
                        break;
                    }
                    if let Activated::Stop = activate(ctx, nbrs[(cursor - 1) as usize]) {
                        return;
                    }
                }
            }
            InProbs::PerEdge(ps) => {
                ctx.cost += 1;
                if sample_per_edge(ctx, nbrs, rng, |rng, visit| {
                    SortedSubsetSampler::new(ps).sample_into(rng, visit)
                }) {
                    return;
                }
            }
        }
    }
}

/// Bucket-jump traversal for per-edge weights (falls back to SUBSIM for
/// nodes without an index entry, which cannot happen on a well-formed
/// index).
pub(super) fn traverse_bucket<R: Rng + ?Sized>(
    g: &Graph,
    index: &[Option<BucketJumpSampler>],
    ctx: &mut RrContext,
    rng: &mut R,
) {
    ctx.queue.push(ctx.buf[0]);
    let mut head = 0;
    while head < ctx.queue.len() {
        let u = ctx.queue[head];
        head += 1;
        let nbrs = g.in_neighbors(u);
        if nbrs.is_empty() {
            continue;
        }
        ctx.cost += 1;
        let Some(sampler) = &index[u as usize] else {
            continue;
        };
        if sample_per_edge(ctx, nbrs, rng, |rng, visit| sampler.sample_into(rng, visit)) {
            return;
        }
    }
}

/// Runs a per-edge subset sampler over `nbrs`, activating sampled
/// neighbors. Returns `true` if a sentinel stop fired.
///
/// The samplers drive a `FnMut(usize)` callback that cannot abort, so a
/// sentinel hit sets a flag and ignores the (few) remaining callbacks of
/// the current node; those nodes are genuine RR members anyway, and the
/// BFS stops before expanding anything further.
pub(super) fn sample_per_edge<R, S>(
    ctx: &mut RrContext,
    nbrs: &[NodeId],
    rng: &mut R,
    sample: S,
) -> bool
where
    R: Rng + ?Sized,
    S: FnOnce(&mut R, &mut dyn FnMut(usize)),
{
    let mut stop = false;
    let mut landings = 0u64;
    sample(rng, &mut |i: usize| {
        landings += 1;
        if stop {
            return;
        }
        if let Activated::Stop = activate(ctx, nbrs[i]) {
            stop = true;
        }
    });
    ctx.cost += landings;
    stop
}

/// Builds the per-node bucket-jump index for a per-edge-weight graph.
pub(super) fn build_bucket_index(g: &Graph) -> Vec<Option<BucketJumpSampler>> {
    (0..g.n() as NodeId)
        .map(|v| match g.in_probs(v) {
            InProbs::PerEdge(ps) if !ps.is_empty() => Some(BucketJumpSampler::new(ps)),
            _ => None,
        })
        .collect()
}
