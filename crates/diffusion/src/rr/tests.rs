//! Correctness tests for the RR-set generators.
//!
//! The central invariant (paper Lemma 1): for any seed set `S`,
//! `n · Pr[S ∩ R ≠ ∅] = 𝕀(S)`. Every generator is checked against the
//! forward Monte-Carlo oracle, and the fast generators are checked against
//! the vanilla one node-by-node.

use super::*;
use crate::forward::{mc_influence, CascadeModel};
use subsim_graph::generators::{complete_graph, path_graph, star_graph};
use subsim_graph::{GraphBuilder, WeightModel};
use subsim_sampling::rng_from_seed;

const IC_STRATEGIES: [RrStrategy; 3] = [
    RrStrategy::VanillaIc,
    RrStrategy::SubsimIc,
    RrStrategy::SubsimBucketIc,
];

/// Estimates `n · Pr[S ∩ R ≠ ∅]` with `count` random RR sets.
fn rr_influence(
    g: &subsim_graph::Graph,
    strategy: RrStrategy,
    seeds: &[NodeId],
    count: usize,
    seed: u64,
) -> f64 {
    let sampler = RrSampler::new(g, strategy);
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(seed);
    let mut is_seed = vec![false; g.n()];
    for &s in seeds {
        is_seed[s as usize] = true;
    }
    let mut covered = 0usize;
    for _ in 0..count {
        sampler.generate(&mut ctx, &mut rng);
        if ctx.last().iter().any(|&v| is_seed[v as usize]) {
            covered += 1;
        }
    }
    g.n() as f64 * covered as f64 / count as f64
}

#[test]
fn rr_set_always_contains_root() {
    let g = star_graph(10, WeightModel::Wc);
    for strategy in IC_STRATEGIES {
        let sampler = RrSampler::new(&g, strategy);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(1);
        for root in 0..10 {
            sampler.generate_from(&mut ctx, &mut rng, root);
            assert_eq!(ctx.last()[0], root);
        }
    }
}

#[test]
fn deterministic_chain_rr_is_full_prefix() {
    // 0 -> 1 -> 2 -> 3 -> 4 with p = 1: RR(v) = {v, v-1, …, 0}.
    let g = path_graph(5, WeightModel::UniformIc { p: 1.0 });
    for strategy in IC_STRATEGIES {
        let sampler = RrSampler::new(&g, strategy);
        let mut ctx = RrContext::new(5);
        let mut rng = rng_from_seed(2);
        sampler.generate_from(&mut ctx, &mut rng, 3);
        let mut set = ctx.last().to_vec();
        set.sort_unstable();
        assert_eq!(set, vec![0, 1, 2, 3], "{strategy:?}");
    }
}

#[test]
fn zero_probability_rr_is_singleton() {
    let g = complete_graph(6, WeightModel::UniformIc { p: 0.0 });
    for strategy in IC_STRATEGIES {
        let sampler = RrSampler::new(&g, strategy);
        let mut ctx = RrContext::new(6);
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            assert_eq!(sampler.generate(&mut ctx, &mut rng), 1, "{strategy:?}");
        }
    }
}

#[test]
fn lemma1_ic_strategies_match_forward_oracle() {
    // Heterogeneous little graph exercising per-edge weights.
    let g = GraphBuilder::new(6)
        .add_weighted_edge(0, 1, 0.7)
        .add_weighted_edge(0, 2, 0.3)
        .add_weighted_edge(1, 2, 0.5)
        .add_weighted_edge(2, 3, 0.9)
        .add_weighted_edge(3, 4, 0.2)
        .add_weighted_edge(1, 4, 0.4)
        .add_weighted_edge(4, 5, 0.6)
        .build()
        .unwrap();
    for seeds in [vec![0], vec![0, 3], vec![2]] {
        let oracle = mc_influence(&g, &seeds, CascadeModel::Ic, 120_000, 4);
        for strategy in IC_STRATEGIES {
            let est = rr_influence(&g, strategy, &seeds, 120_000, 5);
            assert!(
                (est - oracle).abs() < 0.08,
                "{strategy:?} seeds {seeds:?}: rr {est} vs forward {oracle}"
            );
        }
    }
}

#[test]
fn lemma1_wc_model() {
    let g = subsim_graph::generators::erdos_renyi_gnm(60, 300, WeightModel::Wc, 6);
    let seeds = vec![0, 7, 13];
    let oracle = mc_influence(&g, &seeds, CascadeModel::Ic, 60_000, 7);
    for strategy in IC_STRATEGIES {
        let est = rr_influence(&g, strategy, &seeds, 60_000, 8);
        assert!(
            (est - oracle).abs() < 0.05 * oracle.max(1.0),
            "{strategy:?}: rr {est} vs forward {oracle}"
        );
    }
}

#[test]
fn lemma1_lt_model() {
    let g = subsim_graph::generators::erdos_renyi_gnm(50, 250, WeightModel::Lt, 9);
    let seeds = vec![3, 11];
    let oracle = mc_influence(&g, &seeds, CascadeModel::Lt, 80_000, 10);
    let est = rr_influence(&g, RrStrategy::Lt, &seeds, 80_000, 11);
    assert!(
        (est - oracle).abs() < 0.05 * oracle.max(1.0),
        "LT: rr {est} vs forward {oracle}"
    );
}

#[test]
fn subsim_matches_vanilla_node_marginals() {
    // Per-node inclusion frequency must agree across strategies.
    let g = GraphBuilder::new(5)
        .add_weighted_edge(1, 0, 0.8)
        .add_weighted_edge(2, 0, 0.4)
        .add_weighted_edge(3, 0, 0.1)
        .add_weighted_edge(4, 2, 0.5)
        .add_weighted_edge(3, 2, 0.25)
        .build()
        .unwrap();
    let count = 150_000;
    let mut freq = [[0.0f64; 3]; 5];
    for (si, strategy) in IC_STRATEGIES.iter().enumerate() {
        let sampler = RrSampler::new(&g, *strategy);
        let mut ctx = RrContext::new(5);
        let mut rng = rng_from_seed(12);
        for _ in 0..count {
            sampler.generate_from(&mut ctx, &mut rng, 0);
            for &v in ctx.last() {
                freq[v as usize][si] += 1.0 / count as f64;
            }
        }
    }
    for (v, f) in freq.iter().enumerate() {
        for si in 1..3 {
            assert!(
                (f[0] - f[si]).abs() < 0.01,
                "node {v}: vanilla {} vs {:?} {}",
                f[0],
                IC_STRATEGIES[si],
                f[si]
            );
        }
    }
}

#[test]
fn sentinel_stops_traversal_at_hit() {
    let g = path_graph(10, WeightModel::UniformIc { p: 1.0 });
    for strategy in IC_STRATEGIES {
        let sampler = RrSampler::new(&g, strategy);
        let mut ctx = RrContext::new(10);
        ctx.set_sentinel(&[4]);
        let mut rng = rng_from_seed(13);
        sampler.generate_from(&mut ctx, &mut rng, 8);
        // Walks 8 -> 7 -> 6 -> 5 -> 4 and stops.
        assert_eq!(ctx.last(), &[8, 7, 6, 5, 4], "{strategy:?}");
        assert_eq!(ctx.sentinel_hits, 1);
        ctx.clear_sentinel();
        sampler.generate_from(&mut ctx, &mut rng, 8);
        assert_eq!(ctx.last().len(), 9); // full prefix without sentinel
    }
}

#[test]
fn sentinel_root_returns_immediately() {
    let g = complete_graph(5, WeightModel::UniformIc { p: 1.0 });
    let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
    let mut ctx = RrContext::new(5);
    ctx.set_sentinel(&[2]);
    let mut rng = rng_from_seed(14);
    assert_eq!(sampler.generate_from(&mut ctx, &mut rng, 2), 1);
    assert_eq!(ctx.sentinel_hits, 1);
}

#[test]
fn sentinel_preserves_hit_probability() {
    // Pr[R ∩ B ≠ ∅] must be identical with and without sentinel stopping:
    // stopping only truncates *after* the hit (paper Section 4).
    let g = subsim_graph::generators::barabasi_albert(
        200,
        4,
        WeightModel::WcVariant { theta: 3.0 },
        15,
    );
    let sentinel = [0u32, 1, 2];
    let count = 60_000;
    let mut hits = [0usize; 2];
    for (mode, h) in hits.iter_mut().enumerate() {
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        if mode == 1 {
            ctx.set_sentinel(&sentinel);
        }
        let mut rng = rng_from_seed(16 + mode as u64);
        for _ in 0..count {
            sampler.generate(&mut ctx, &mut rng);
            if ctx.last().iter().any(|&v| sentinel.contains(&v)) {
                *h += 1;
            }
        }
    }
    let (a, b) = (hits[0] as f64 / count as f64, hits[1] as f64 / count as f64);
    assert!((a - b).abs() < 0.015, "hit prob without {a} vs with {b}");
}

#[test]
fn sentinel_shrinks_average_size() {
    let g = subsim_graph::generators::barabasi_albert(
        300,
        4,
        WeightModel::WcVariant { theta: 4.0 },
        17,
    );
    // Use the highest out-degree node as sentinel — it is hit often.
    let hub = (0..g.n() as NodeId)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap();
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let count = 5_000;
    let mut rng = rng_from_seed(18);
    let mut ctx = RrContext::new(g.n());
    let mut plain = 0usize;
    for _ in 0..count {
        plain += sampler.generate(&mut ctx, &mut rng);
    }
    ctx.set_sentinel(&[hub]);
    let mut trunc = 0usize;
    for _ in 0..count {
        trunc += sampler.generate(&mut ctx, &mut rng);
    }
    assert!(
        (trunc as f64) < 0.8 * plain as f64,
        "sentinel should shrink sizes: {trunc} vs {plain}"
    );
}

#[test]
fn subsim_cost_below_vanilla_on_wc() {
    // WC: vanilla pays Σ d_in over activated nodes, SUBSIM pays O(1 + μ)
    // with μ <= 1 — the cost counter must reflect the gap on a hub-heavy
    // graph.
    let g = subsim_graph::generators::barabasi_albert(2_000, 8, WeightModel::Wc, 19);
    let count = 3_000;
    let mut costs = [0u64; 2];
    for (i, strategy) in [RrStrategy::VanillaIc, RrStrategy::SubsimIc]
        .iter()
        .enumerate()
    {
        let sampler = RrSampler::new(&g, *strategy);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(20);
        for _ in 0..count {
            sampler.generate(&mut ctx, &mut rng);
        }
        costs[i] = ctx.cost;
    }
    assert!(
        costs[1] * 2 < costs[0],
        "subsim cost {} should be well below vanilla {}",
        costs[1],
        costs[0]
    );
}

#[test]
fn lt_rr_is_simple_path_until_revisit() {
    let g = complete_graph(8, WeightModel::Lt);
    let sampler = RrSampler::new(&g, RrStrategy::Lt);
    let mut ctx = RrContext::new(8);
    let mut rng = rng_from_seed(21);
    for _ in 0..200 {
        sampler.generate(&mut ctx, &mut rng);
        let set = ctx.last();
        let mut sorted = set.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), set.len(), "duplicates in LT path {set:?}");
    }
}

#[test]
fn generation_is_deterministic_from_seed() {
    let g = subsim_graph::generators::rmat(8, 1500, WeightModel::Wc, 22);
    for strategy in IC_STRATEGIES {
        let collect = |seed: u64| {
            let sampler = RrSampler::new(&g, strategy);
            let mut ctx = RrContext::new(g.n());
            let mut rng = rng_from_seed(seed);
            let mut all = Vec::new();
            for _ in 0..100 {
                sampler.generate(&mut ctx, &mut rng);
                all.extend_from_slice(ctx.last());
            }
            all
        };
        assert_eq!(collect(23), collect(23), "{strategy:?}");
    }
}

#[test]
fn epoch_wraparound_resets_cleanly() {
    let g = path_graph(3, WeightModel::UniformIc { p: 1.0 });
    let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
    let mut ctx = RrContext::new(3);
    ctx.epoch = u32::MAX - 2;
    let mut rng = rng_from_seed(24);
    for _ in 0..10 {
        sampler.generate_from(&mut ctx, &mut rng, 2);
        assert_eq!(ctx.last().len(), 3);
    }
}

#[test]
fn subsim_cost_tracks_one_plus_mu_per_activation() {
    // Lemma 3 / Theorem 1: under WC (μ <= 1 per node) SUBSIM's sampling
    // cost per RR set is O(1 + |R|) — independent of node degrees. The
    // hybrid scan path bounds the per-node constant by 1/SCAN_THRESHOLD.
    let g = subsim_graph::generators::barabasi_albert(2_000, 8, WeightModel::Wc, 71);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(72);
    let count = 20_000;
    let mut total_size = 0usize;
    for _ in 0..count {
        total_size += sampler.generate(&mut ctx, &mut rng);
    }
    let avg_size = total_size as f64 / count as f64;
    let avg_cost = ctx.cost as f64 / count as f64;
    assert!(
        avg_cost <= 8.0 * (1.0 + avg_size),
        "avg cost {avg_cost} not O(1 + avg size {avg_size})"
    );
}

#[test]
fn vanilla_cost_equals_indegree_sum_of_activations() {
    // The vanilla counter must equal Σ d_in over expanded nodes — the
    // quantity the paper's analysis charges Algorithm 2 for. On a p = 1
    // chain every activated node is expanded.
    let g = subsim_graph::generators::path_graph(10, WeightModel::UniformIc { p: 1.0 });
    let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
    let mut ctx = RrContext::new(10);
    let mut rng = rng_from_seed(73);
    sampler.generate_from(&mut ctx, &mut rng, 9);
    // Nodes 9..=0 activated; each has in-degree 1 except node 0.
    assert_eq!(ctx.cost, 9);
}

#[test]
fn reset_counters_clears_cost_and_hits() {
    let g = subsim_graph::generators::path_graph(5, WeightModel::UniformIc { p: 1.0 });
    let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
    let mut ctx = RrContext::new(5);
    ctx.set_sentinel(&[0]);
    let mut rng = rng_from_seed(74);
    sampler.generate_from(&mut ctx, &mut rng, 4);
    assert!(ctx.cost > 0 && ctx.sentinel_hits == 1);
    ctx.reset_counters();
    assert_eq!((ctx.cost, ctx.sentinel_hits), (0, 0));
    // The last RR set survives a counter reset.
    assert!(!ctx.last().is_empty());
}
