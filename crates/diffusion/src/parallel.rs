//! Parallel batch RR-set generation.
//!
//! The algorithms in `subsim-core` are single-threaded and reproducible
//! from one seed; this module offers an opt-in parallel path for users who
//! generate very large collections up front. Each worker owns its RNG
//! (seeded as `seed ⊕ worker_index`) and scratch context, so the output is
//! deterministic for a fixed `(seed, threads, count)` triple — workers'
//! batches are concatenated in worker order.

use crate::collection::RrCollection;
use crate::rr::{RrContext, RrSampler};
use parking_lot::Mutex;
use subsim_graph::NodeId;
use subsim_sampling::rng_from_seed;

/// Result of a parallel generation batch.
#[derive(Debug)]
pub struct ParBatch {
    /// The generated sets (worker batches concatenated in worker order).
    pub rr: RrCollection,
    /// Summed cost proxy across workers (see [`RrContext::cost`]).
    pub cost: u64,
    /// Summed sentinel hits across workers.
    pub sentinel_hits: u64,
}

/// Generates `count` random RR sets across `threads` workers.
///
/// `sentinel`, when given, is installed in every worker's context
/// (Algorithm 5 truncation). `threads == 0` panics; `threads == 1` runs
/// inline.
pub fn par_generate(
    sampler: &RrSampler<'_>,
    sentinel: Option<&[NodeId]>,
    count: usize,
    threads: usize,
    seed: u64,
) -> ParBatch {
    assert!(threads > 0, "need at least one worker");
    let n = sampler.graph().n();
    if threads == 1 {
        let mut ctx = RrContext::new(n);
        if let Some(s) = sentinel {
            ctx.set_sentinel(s);
        }
        let mut rng = rng_from_seed(seed);
        let mut rr = RrCollection::new(n);
        rr.generate(sampler, &mut ctx, &mut rng, count);
        return ParBatch {
            rr,
            cost: ctx.cost,
            sentinel_hits: ctx.sentinel_hits,
        };
    }

    // Slot per worker, filled out of order, merged in order.
    let slots: Vec<Mutex<Option<(RrCollection, u64, u64)>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for (w, slot) in slots.iter().enumerate() {
            let quota = count / threads + usize::from(w < count % threads);
            scope.spawn(move |_| {
                let mut ctx = RrContext::new(n);
                if let Some(s) = sentinel {
                    ctx.set_sentinel(s);
                }
                let mut rng = rng_from_seed(seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let mut rr = RrCollection::new(n);
                rr.generate(sampler, &mut ctx, &mut rng, quota);
                *slot.lock() = Some((rr, ctx.cost, ctx.sentinel_hits));
            });
        }
    })
    .expect("worker panicked");

    let mut rr = RrCollection::new(n);
    let (mut cost, mut hits) = (0u64, 0u64);
    for slot in slots {
        let (part, c, h) = slot.into_inner().expect("worker finished");
        for set in part.iter() {
            rr.push(set);
        }
        cost += c;
        hits += h;
    }
    ParBatch {
        rr,
        cost,
        sentinel_hits: hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RrStrategy;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    #[test]
    fn produces_requested_count() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 51);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        for threads in [1, 2, 4, 7] {
            let batch = par_generate(&sampler, None, 1000, threads, 52);
            assert_eq!(batch.rr.len(), 1000, "threads={threads}");
            assert!(batch.cost > 0);
        }
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 53);
        let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
        let a = par_generate(&sampler, None, 400, 4, 54);
        let b = par_generate(&sampler, None, 400, 4, 54);
        assert_eq!(a.rr.len(), b.rr.len());
        for i in 0..a.rr.len() {
            assert_eq!(a.rr.get(i), b.rr.get(i));
        }
    }

    #[test]
    fn sentinel_applied_in_all_workers() {
        let g = barabasi_albert(300, 4, WeightModel::WcVariant { theta: 4.0 }, 55);
        let hub = (0..300u32).max_by_key(|&v| g.out_degree(v)).unwrap();
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let plain = par_generate(&sampler, None, 3000, 4, 56);
        let trunc = par_generate(&sampler, Some(&[hub]), 3000, 4, 56);
        assert!(trunc.sentinel_hits > 0);
        assert!(trunc.rr.avg_size() < plain.rr.avg_size());
    }

    #[test]
    fn single_thread_matches_sequential_generate() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 57);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let batch = par_generate(&sampler, None, 200, 1, 58);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(58);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, 200);
        for i in 0..200 {
            assert_eq!(batch.rr.get(i), rr.get(i));
        }
    }
}
