//! Parallel batch RR-set generation.
//!
//! The algorithms in `subsim-core` are single-threaded and reproducible
//! from one seed; this module offers an opt-in parallel path for users who
//! generate very large collections up front. Each worker owns its RNG
//! (seeded as `seed ⊕ worker_index`) and scratch context, so the output is
//! deterministic for a fixed `(seed, threads, count)` triple — workers'
//! batches are concatenated in worker order.
//!
//! [`par_generate_chunks`] additionally offers *chunked* generation, where
//! the RNG is re-seeded per fixed-size chunk rather than per worker: the
//! output is then deterministic for `(seed, chunk range, chunk size)`
//! **independent of the thread count**, which is what lets `subsim-index`
//! grow a pool incrementally across queries (and across process restarts)
//! while staying bit-identical to a fresh pool of the same size.
//!
//! Chunked generation is scheduled by the work-stealing
//! [`WorkerPool`](crate::pool::WorkerPool): workers claim chunk ids from a
//! shared counter instead of owning static blocks, so skewed chunk costs
//! (hub-rooted RR sets under WC weights) no longer leave the batch waiting
//! on one straggler. The retired static block split survives as
//! [`par_generate_chunks_static`] — a differential reference for tests and
//! the `scheduler` bench.

use crate::collection::RrCollection;
use crate::pool::WorkerPool;
use crate::rr::{RrContext, RrSampler};
use std::time::{Duration, Instant};
use subsim_graph::NodeId;
use subsim_sampling::rng_from_seed;

/// Result of a parallel generation batch.
#[derive(Debug)]
pub struct ParBatch {
    /// The generated sets (worker batches concatenated in worker order).
    pub rr: RrCollection,
    /// Summed cost proxy across workers (see [`RrContext::cost`]).
    pub cost: u64,
    /// Summed sentinel hits across workers.
    pub sentinel_hits: u64,
    /// Wall-clock time of the batch (spawn through join and concatenate).
    pub elapsed: Duration,
    /// Which worker generated each chunk, in chunk order (scheduler
    /// telemetry; empty for non-chunked batches).
    pub chunk_workers: Vec<u32>,
    /// Cost proxy of each chunk, in chunk order (empty for non-chunked
    /// batches). Sums to [`ParBatch::cost`].
    pub chunk_costs: Vec<u64>,
    /// Sentinel hits of each chunk, in chunk order (empty for non-chunked
    /// batches). Sums to [`ParBatch::sentinel_hits`]; all-zero when no
    /// sentinel was installed.
    pub chunk_hits: Vec<u64>,
    /// Summed frontier levels across workers (see
    /// [`RrContext::frontier_levels`]); zero when generation took the
    /// scalar path (LT, or a sampler built via `RrSampler::scalar`).
    pub frontier_levels: u64,
    /// Summed frontier widths across workers; equals the total number of
    /// node expansions the level-synchronous kernel performed.
    pub frontier_width_sum: u64,
    /// Widest single frontier level observed by any worker in this batch.
    pub frontier_peak_width: u64,
}

/// Generates `count` random RR sets across `threads` workers.
///
/// `sentinel`, when given, is installed in every worker's context
/// (Algorithm 5 truncation). `threads == 0` panics; `threads == 1` runs
/// inline.
pub fn par_generate(
    sampler: &RrSampler<'_>,
    sentinel: Option<&[NodeId]>,
    count: usize,
    threads: usize,
    seed: u64,
) -> ParBatch {
    assert!(threads > 0, "need at least one worker");
    let start = Instant::now();
    let n = sampler.graph().n();
    if threads == 1 {
        let mut ctx = RrContext::new(n);
        if let Some(s) = sentinel {
            ctx.set_sentinel(s);
        }
        let mut rng = rng_from_seed(seed);
        let mut rr = RrCollection::new(n);
        rr.generate(sampler, &mut ctx, &mut rng, count);
        return ParBatch {
            rr,
            cost: ctx.cost,
            sentinel_hits: ctx.sentinel_hits,
            elapsed: start.elapsed(),
            chunk_workers: Vec::new(),
            chunk_costs: Vec::new(),
            chunk_hits: Vec::new(),
            frontier_levels: ctx.frontier_levels,
            frontier_width_sum: ctx.frontier_width_sum,
            frontier_peak_width: ctx.frontier_peak_width,
        };
    }

    // One worker per spawned thread; scoped joins return the batches in
    // worker order, so no slot synchronization is needed. Each worker
    // hands back its whole context so the batch can aggregate every
    // telemetry counter, not just cost.
    let parts: Vec<(RrCollection, RrContext)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let quota = count / threads + usize::from(w < count % threads);
                scope.spawn(move || {
                    let mut ctx = RrContext::new(n);
                    if let Some(s) = sentinel {
                        ctx.set_sentinel(s);
                    }
                    let mut rng =
                        rng_from_seed(seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let mut rr = RrCollection::new(n);
                    rr.generate(sampler, &mut ctx, &mut rng, quota);
                    (rr, ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut rr = RrCollection::new(n);
    let (mut cost, mut hits) = (0u64, 0u64);
    let (mut levels, mut width_sum, mut peak) = (0u64, 0u64, 0u64);
    for (part, ctx) in parts {
        rr.extend_from(&part);
        cost += ctx.cost;
        hits += ctx.sentinel_hits;
        levels += ctx.frontier_levels;
        width_sum += ctx.frontier_width_sum;
        peak = peak.max(ctx.frontier_peak_width);
    }
    ParBatch {
        rr,
        cost,
        sentinel_hits: hits,
        elapsed: start.elapsed(),
        chunk_workers: Vec::new(),
        chunk_costs: Vec::new(),
        chunk_hits: Vec::new(),
        frontier_levels: levels,
        frontier_width_sum: width_sum,
        frontier_peak_width: peak,
    }
}

/// The RNG seed of chunk `chunk` in the stream rooted at `seed`
/// (splitmix64-style finalizer so consecutive chunks decorrelate).
pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates chunks `chunks.start..chunks.end` of `chunk_size` RR sets
/// each, concatenated in chunk order.
///
/// Chunk `c` is always generated from `rng_from_seed(chunk_seed(seed, c))`
/// regardless of which worker runs it, so the output depends only on
/// `(seed, chunks, chunk_size)` — **not** on `threads`, and not on how the
/// range was split across earlier calls: generating `0..4` in one call
/// equals generating `0..2` then `2..4`. This is the top-up primitive of
/// `subsim-index`'s incrementally grown pools.
///
/// Chunks are scheduled dynamically (work-stealing claim counter) on a
/// transient [`WorkerPool`]; callers issuing repeated batches should hold
/// a [`WorkerPool`] of their own and call
/// [`WorkerPool::generate_chunks`] directly to amortize thread spawning.
pub fn par_generate_chunks(
    sampler: &RrSampler<'_>,
    sentinel: Option<&[NodeId]>,
    chunks: std::ops::Range<u64>,
    chunk_size: usize,
    threads: usize,
    seed: u64,
) -> ParBatch {
    assert!(threads > 0, "need at least one worker");
    let count = chunks.end.saturating_sub(chunks.start) as usize;
    // Never spawn more workers than there are chunks to claim.
    let pool = WorkerPool::new(threads.min(count.max(1)));
    pool.generate_chunks(sampler, sentinel, chunks, chunk_size, seed)
}

/// The retired static scheduler: worker `w` owns a fixed contiguous block
/// of chunks. Output is identical to [`par_generate_chunks`] (chunk
/// content never depends on the schedule) but the batch waits on the most
/// loaded worker, so skewed chunk costs serialize the tail. Kept as the
/// differential reference for determinism tests and the `scheduler` bench.
pub fn par_generate_chunks_static(
    sampler: &RrSampler<'_>,
    sentinel: Option<&[NodeId]>,
    chunks: std::ops::Range<u64>,
    chunk_size: usize,
    threads: usize,
    seed: u64,
) -> ParBatch {
    assert!(threads > 0, "need at least one worker");
    assert!(chunk_size > 0, "chunks must hold at least one set");
    let start = Instant::now();
    let n = sampler.graph().n();
    let count = chunks.end.saturating_sub(chunks.start) as usize;
    if count == 0 {
        return ParBatch {
            rr: RrCollection::new(n),
            cost: 0,
            sentinel_hits: 0,
            elapsed: Duration::ZERO,
            chunk_workers: Vec::new(),
            chunk_costs: Vec::new(),
            chunk_hits: Vec::new(),
            frontier_levels: 0,
            frontier_width_sum: 0,
            frontier_peak_width: 0,
        };
    }

    // Worker `w` takes a contiguous block of chunks, so concatenating the
    // joined batches in worker order preserves chunk order.
    let workers = threads.min(count);
    let parts: Vec<(RrCollection, RrContext)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let quota = count / workers + usize::from(w < count % workers);
                let skipped = (count / workers) * w + w.min(count % workers);
                let first = chunks.start + skipped as u64;
                scope.spawn(move || {
                    let mut ctx = RrContext::new(n);
                    if let Some(s) = sentinel {
                        ctx.set_sentinel(s);
                    }
                    let mut rr = RrCollection::new(n);
                    for c in first..first + quota as u64 {
                        let mut rng = rng_from_seed(chunk_seed(seed, c));
                        rr.generate(sampler, &mut ctx, &mut rng, chunk_size);
                    }
                    (rr, ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut rr = RrCollection::new(n);
    let (mut cost, mut hits) = (0u64, 0u64);
    let (mut levels, mut width_sum, mut peak) = (0u64, 0u64, 0u64);
    for (part, ctx) in parts {
        rr.extend_from(&part);
        cost += ctx.cost;
        hits += ctx.sentinel_hits;
        levels += ctx.frontier_levels;
        width_sum += ctx.frontier_width_sum;
        peak = peak.max(ctx.frontier_peak_width);
    }
    ParBatch {
        rr,
        cost,
        sentinel_hits: hits,
        elapsed: start.elapsed(),
        // The static split tracks per-worker totals only; per-chunk
        // telemetry is a property of the work-stealing scheduler.
        chunk_workers: Vec::new(),
        chunk_costs: Vec::new(),
        chunk_hits: Vec::new(),
        frontier_levels: levels,
        frontier_width_sum: width_sum,
        frontier_peak_width: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RrStrategy;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    #[test]
    fn produces_requested_count() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 51);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        for threads in [1, 2, 4, 7] {
            let batch = par_generate(&sampler, None, 1000, threads, 52);
            assert_eq!(batch.rr.len(), 1000, "threads={threads}");
            assert!(batch.cost > 0);
        }
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 53);
        let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
        let a = par_generate(&sampler, None, 400, 4, 54);
        let b = par_generate(&sampler, None, 400, 4, 54);
        assert_eq!(a.rr.len(), b.rr.len());
        for i in 0..a.rr.len() {
            assert_eq!(a.rr.get(i), b.rr.get(i));
        }
    }

    #[test]
    fn sentinel_applied_in_all_workers() {
        let g = barabasi_albert(300, 4, WeightModel::WcVariant { theta: 4.0 }, 55);
        let hub = (0..300u32).max_by_key(|&v| g.out_degree(v)).unwrap();
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let plain = par_generate(&sampler, None, 3000, 4, 56);
        let trunc = par_generate(&sampler, Some(&[hub]), 3000, 4, 56);
        assert!(trunc.sentinel_hits > 0);
        assert!(trunc.rr.avg_size() < plain.rr.avg_size());
    }

    #[test]
    fn single_thread_matches_sequential_generate() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 57);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let batch = par_generate(&sampler, None, 200, 1, 58);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(58);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, 200);
        for i in 0..200 {
            assert_eq!(batch.rr.get(i), rr.get(i));
        }
    }

    #[test]
    fn chunked_output_independent_of_thread_count() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 59);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let reference = par_generate_chunks(&sampler, None, 0..7, 64, 1, 60);
        assert_eq!(reference.rr.len(), 7 * 64);
        for threads in [2, 3, 5, 8] {
            let batch = par_generate_chunks(&sampler, None, 0..7, 64, threads, 60);
            assert_eq!(batch.rr.len(), reference.rr.len(), "threads={threads}");
            for i in 0..batch.rr.len() {
                assert_eq!(
                    batch.rr.get(i),
                    reference.rr.get(i),
                    "threads={threads}, set {i}"
                );
            }
        }
    }

    #[test]
    fn chunked_splits_concatenate_to_whole_range() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 61);
        let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
        let whole = par_generate_chunks(&sampler, None, 0..6, 50, 4, 62);
        let mut spliced = par_generate_chunks(&sampler, None, 0..2, 50, 2, 62).rr;
        spliced.extend_from(&par_generate_chunks(&sampler, None, 2..6, 50, 3, 62).rr);
        assert_eq!(whole.rr.len(), spliced.len());
        for i in 0..whole.rr.len() {
            assert_eq!(whole.rr.get(i), spliced.get(i), "set {i}");
        }
    }

    #[test]
    fn static_and_stealing_schedulers_agree() {
        let g = barabasi_albert(250, 4, WeightModel::Wc, 65);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        for threads in [1, 2, 4, 6] {
            let stealing = par_generate_chunks(&sampler, None, 2..11, 40, threads, 66);
            let fixed = par_generate_chunks_static(&sampler, None, 2..11, 40, threads, 66);
            assert_eq!(stealing.rr.len(), fixed.rr.len(), "threads={threads}");
            for i in 0..stealing.rr.len() {
                assert_eq!(
                    stealing.rr.get(i),
                    fixed.rr.get(i),
                    "threads={threads} set {i}"
                );
            }
            assert_eq!(stealing.cost, fixed.cost, "threads={threads}");
        }
    }

    #[test]
    fn chunked_batch_reports_per_chunk_telemetry() {
        let g = barabasi_albert(120, 3, WeightModel::Wc, 67);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let batch = par_generate_chunks(&sampler, None, 0..9, 25, 3, 68);
        assert_eq!(batch.chunk_workers.len(), 9);
        assert_eq!(batch.chunk_costs.iter().sum::<u64>(), batch.cost);
    }

    #[test]
    fn frontier_telemetry_aggregates_across_workers() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 69);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let reference = par_generate_chunks(&sampler, None, 0..8, 32, 1, 70);
        assert!(reference.frontier_levels > 0);
        // Every node in every set is expanded by exactly one frontier
        // level, so the summed widths equal the pool's coverage mass.
        assert_eq!(
            reference.frontier_width_sum,
            reference.rr.total_nodes() as u64
        );
        assert!(reference.frontier_peak_width > 0);
        assert!(reference.frontier_peak_width <= reference.frontier_width_sum);
        // Chunk content is thread-count invariant, so the summed telemetry
        // (and the batch-wide peak) must be too.
        for threads in [2, 3, 5] {
            let batch = par_generate_chunks(&sampler, None, 0..8, 32, threads, 70);
            assert_eq!(
                batch.frontier_levels, reference.frontier_levels,
                "threads={threads}"
            );
            assert_eq!(
                batch.frontier_width_sum, reference.frontier_width_sum,
                "threads={threads}"
            );
            assert_eq!(
                batch.frontier_peak_width, reference.frontier_peak_width,
                "threads={threads}"
            );
        }
        // The scalar sampler never runs the frontier kernel: telemetry
        // stays zero however many workers the batch used.
        let scalar = RrSampler::scalar(&g, RrStrategy::SubsimIc);
        let plain = par_generate(&scalar, None, 300, 4, 71);
        assert_eq!(plain.frontier_levels, 0);
        assert_eq!(plain.frontier_width_sum, 0);
        assert_eq!(plain.frontier_peak_width, 0);
    }

    #[test]
    fn chunked_empty_range_yields_nothing() {
        let g = barabasi_albert(100, 3, WeightModel::Wc, 63);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let batch = par_generate_chunks(&sampler, None, 5..5, 32, 4, 64);
        assert!(batch.rr.is_empty());
        assert_eq!(batch.cost, 0);
    }
}
