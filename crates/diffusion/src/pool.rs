//! Persistent worker pool with a work-stealing chunk scheduler.
//!
//! [`crate::parallel::par_generate_chunks`] used to hand each worker a
//! static contiguous block of chunks. Under WC weights chunk costs are
//! wildly skewed — a hub-rooted RR set can be 100× a leaf-rooted one — so
//! the whole batch waited on one straggler. [`WorkerPool`] replaces the
//! static split with dynamic scheduling: workers claim chunk ids from a
//! shared atomic counter, write each finished chunk into a per-chunk slot,
//! and the batch concatenates slots in **chunk order**. Because chunk `c`
//! is always generated from `rng_from_seed(chunk_seed(seed, c))` no matter
//! which worker claims it, the output stays bit-identical to the
//! single-thread reference for any `(seed, chunks, chunk_size)` — the
//! schedule affects *wall-clock only*, never content.
//!
//! The pool is also *persistent*: threads are spawned once and reused
//! across batches, so an index writer topping up its pool every few
//! queries does not pay thread-spawn cost per growth round. Each worker
//! owns a reusable [`RrContext`] scratch that survives between batches
//! (re-created only when the graph size changes), and every batch reports
//! per-chunk cost and worker attribution so callers can feed scheduler
//! telemetry into their metrics.
//!
//! # Batch execution model
//!
//! A pool of `threads` workers consists of `threads - 1` background
//! threads plus the caller, which participates as worker 0. Batches are
//! serialized: a `Mutex` around the caller's scratch doubles as the
//! one-batch-at-a-time guard. A batch body is a `Fn(worker, &mut
//! WorkerScratch)` closure; its lifetime is erased to hand it to the
//! persistent threads, which is sound because [`WorkerPool::run_batch`]
//! does not return until every worker has finished the body (the
//! completion latch below), so the borrow outlives all uses.

use crate::collection::RrCollection;
use crate::parallel::{chunk_seed, ParBatch};
use crate::rr::{RrContext, RrSampler};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use subsim_graph::NodeId;
use subsim_sampling::rng_from_seed;

/// Typed failure of a pool batch.
///
/// The pool degrades gracefully: a panic inside a batch body is caught on
/// every worker (background threads stay alive, no lock is poisoned), the
/// batch's partial output is discarded, and the pool is immediately ready
/// for the next batch. Callers that keep an existing RR pool therefore
/// keep serving from their pre-batch content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// At least one worker panicked inside the batch body. The partial
    /// batch output was discarded; the pool remains usable.
    WorkerPanicked,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked => {
                write!(f, "a pool worker panicked during the batch")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Test-instrumentation hook invoked as `(worker, chunk_id)` right before
/// each chunk is generated. A panicking hook simulates a worker crash
/// mid-batch; see [`WorkerPool::set_chunk_hook`].
pub type ChunkHook = Arc<dyn Fn(usize, u64) + Send + Sync>;

/// Locks a mutex, recovering from poisoning: batch bodies run under
/// `catch_unwind`, so state behind these locks is never left mid-update
/// by a panic — the poison flag alone carries no information here.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-worker scratch that persists across batches.
///
/// Holds the worker's [`RrContext`] (epoch-stamped visited array, BFS
/// queue, output buffer) keyed by the graph size it was built for; the
/// context is re-created only when a batch runs over a different graph.
pub struct WorkerScratch {
    n: usize,
    ctx: RrContext,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            n: 0,
            ctx: RrContext::new(0),
        }
    }

    /// The reusable context for a graph with `n` nodes, re-created if the
    /// previous batch ran over a different graph.
    pub fn context_for(&mut self, n: usize) -> &mut RrContext {
        if self.n != n {
            self.ctx = RrContext::new(n);
            self.n = n;
        }
        &mut self.ctx
    }
}

/// A batch body as seen by workers: `(worker index, scratch)`.
type BatchFn<'a> = dyn Fn(usize, &mut WorkerScratch) + Sync + 'a;

/// Lifetime-erased pointer to the current batch body.
///
/// Only ever dereferenced between the epoch bump that publishes it and the
/// completion latch that retires it, both inside `run_batch`'s borrow.
struct Task(*const BatchFn<'static>);

// SAFETY: the pointee is `Sync` (shared by all workers) and `run_batch`
// keeps it alive for as long as any worker can observe the pointer.
unsafe impl Send for Task {}

struct JobState {
    /// Bumped once per batch; workers run a task exactly once per epoch.
    epoch: u64,
    task: Option<Task>,
    /// Background workers still inside the current batch body.
    running: usize,
    /// Set if a worker panicked inside a batch body.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    /// Signalled when a new batch is published (or on shutdown).
    start: Condvar,
    /// Signalled when the last running worker finishes the batch.
    done: Condvar,
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    let mut scratch = WorkerScratch::new();
    let mut seen = 0u64;
    loop {
        let ptr = {
            let mut st = relock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.task.as_ref().expect("epoch bumped without a task").0;
                }
                st = shared
                    .start
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: `try_run_batch` keeps the closure borrowed until
        // `running` reaches 0, which the decrement below guarantees
        // happens after this call.
        let body = unsafe { &*ptr };
        // Catch panics so the worker thread survives a crashing batch
        // body: the batch fails with a typed error but the pool stays
        // serviceable for the next batch.
        let panicked = catch_unwind(AssertUnwindSafe(|| body(worker, &mut scratch))).is_err();
        if panicked {
            // The scratch context may be mid-traversal; drop it rather
            // than risk stale sentinel/epoch state leaking into the next
            // batch.
            scratch = WorkerScratch::new();
        }
        let mut st = relock(&shared.state);
        if panicked {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// A persistent pool of RR-generation workers.
///
/// Spawned once, reused across any number of batches; see the module docs
/// for the execution model. Dropping the pool joins all workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Worker 0's scratch; the lock also serializes batches.
    caller: Mutex<WorkerScratch>,
    threads: usize,
    /// Fault-injection hook, sampled once at the start of each chunk batch.
    chunk_hook: Mutex<Option<ChunkHook>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (`threads - 1` background
    /// threads; the caller participates as worker 0). Panics if
    /// `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                epoch: 0,
                task: None,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("subsim-worker-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            caller: Mutex::new(WorkerScratch::new()),
            threads,
            chunk_hook: Mutex::new(None),
        }
    }

    /// Number of workers (background threads + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs (or clears, with `None`) a fault-injection hook invoked as
    /// `(worker, chunk_id)` right before each chunk is generated.
    ///
    /// The hook is sampled once per batch, so mid-batch swaps do not tear.
    /// A hook that panics simulates a worker crashing mid-chunk: the batch
    /// fails with [`PoolError::WorkerPanicked`] while the pool itself
    /// stays serviceable. Intended for test harnesses (see
    /// `subsim-testkit`); production code leaves it unset.
    pub fn set_chunk_hook(&self, hook: Option<ChunkHook>) {
        *relock(&self.chunk_hook) = hook;
    }

    /// Runs `body(worker, scratch)` once on every worker concurrently and
    /// returns when all of them have finished.
    ///
    /// Batches are serialized; a second caller blocks until the first
    /// batch completes. Panics if any worker panicked inside the body —
    /// use [`WorkerPool::try_run_batch`] for a typed error instead.
    pub fn run_batch(&self, body: &(dyn Fn(usize, &mut WorkerScratch) + Sync)) {
        if let Err(e) = self.try_run_batch(body) {
            panic!("{e}");
        }
    }

    /// Fallible [`WorkerPool::run_batch`]: a panic inside the body on any
    /// worker is caught and surfaced as [`PoolError::WorkerPanicked`],
    /// with all workers alive and no lock poisoned — the pool accepts the
    /// next batch normally.
    pub fn try_run_batch(
        &self,
        body: &(dyn Fn(usize, &mut WorkerScratch) + Sync),
    ) -> Result<(), PoolError> {
        let mut caller = relock(&self.caller);
        if self.threads == 1 {
            let panicked = catch_unwind(AssertUnwindSafe(|| body(0, &mut caller))).is_err();
            if panicked {
                *caller = WorkerScratch::new();
                return Err(PoolError::WorkerPanicked);
            }
            return Ok(());
        }
        // SAFETY: erases the borrow lifetime only; the pointee stays
        // borrowed (and thus alive) until the completion wait below.
        let erased: *const BatchFn<'static> =
            unsafe { std::mem::transmute(body as *const BatchFn<'_>) };
        {
            let mut st = relock(&self.shared.state);
            st.task = Some(Task(erased));
            st.running = self.threads - 1;
            st.epoch += 1;
            self.shared.start.notify_all();
        }
        let caller_panicked = catch_unwind(AssertUnwindSafe(|| body(0, &mut caller))).is_err();
        if caller_panicked {
            *caller = WorkerScratch::new();
        }
        let mut st = relock(&self.shared.state);
        while st.running > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.task = None;
        let worker_panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        if caller_panicked || worker_panicked {
            Err(PoolError::WorkerPanicked)
        } else {
            Ok(())
        }
    }

    /// Generates chunks `chunks.start..chunks.end` of `chunk_size` RR sets
    /// each with dynamic chunk scheduling, concatenated in chunk order.
    ///
    /// Workers claim chunk ids from a shared atomic counter, so a worker
    /// stuck on an expensive hub-rooted chunk never blocks the others from
    /// draining the rest of the range. Chunk `c` is always generated from
    /// `rng_from_seed(chunk_seed(seed, c))` regardless of which worker
    /// claims it: the output depends only on `(seed, chunks, chunk_size)`
    /// — not on the thread count, not on the claim order, and not on how
    /// the range was split across earlier calls.
    ///
    /// The returned batch carries per-chunk worker attribution and cost
    /// (`chunk_workers`/`chunk_costs`) for scheduler telemetry.
    pub fn generate_chunks(
        &self,
        sampler: &RrSampler<'_>,
        sentinel: Option<&[NodeId]>,
        chunks: Range<u64>,
        chunk_size: usize,
        seed: u64,
    ) -> ParBatch {
        let ids: Vec<u64> = chunks.collect();
        self.generate_chunk_ids(sampler, sentinel, &ids, chunk_size, seed)
    }

    /// Fallible [`WorkerPool::generate_chunks`]; see
    /// [`WorkerPool::try_generate_chunk_ids`] for the error contract.
    pub fn try_generate_chunks(
        &self,
        sampler: &RrSampler<'_>,
        sentinel: Option<&[NodeId]>,
        chunks: Range<u64>,
        chunk_size: usize,
        seed: u64,
    ) -> Result<ParBatch, PoolError> {
        let ids: Vec<u64> = chunks.collect();
        self.try_generate_chunk_ids(sampler, sentinel, &ids, chunk_size, seed)
    }

    /// [`WorkerPool::generate_chunks`] over an arbitrary chunk-id list
    /// instead of a contiguous range, concatenated in `ids` order.
    ///
    /// This is the repair path: an incremental update regenerates exactly
    /// the dirty chunks of an existing pool, and because chunk `c` is still
    /// seeded from `chunk_seed(seed, c)`, each regenerated chunk is
    /// bit-identical to what a full rebuild over the same graph would
    /// produce for that id — independent of thread count and claim order.
    pub fn generate_chunk_ids(
        &self,
        sampler: &RrSampler<'_>,
        sentinel: Option<&[NodeId]>,
        ids: &[u64],
        chunk_size: usize,
        seed: u64,
    ) -> ParBatch {
        match self.try_generate_chunk_ids(sampler, sentinel, ids, chunk_size, seed) {
            Ok(batch) => batch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`WorkerPool::generate_chunk_ids`].
    ///
    /// On [`PoolError::WorkerPanicked`] the partially generated batch is
    /// discarded in full — no truncated or hole-ridden pool is ever
    /// returned — and the pool remains ready for the next batch, so a
    /// caller that appends batches to an existing collection keeps its
    /// pre-batch content intact.
    pub fn try_generate_chunk_ids(
        &self,
        sampler: &RrSampler<'_>,
        sentinel: Option<&[NodeId]>,
        ids: &[u64],
        chunk_size: usize,
        seed: u64,
    ) -> Result<ParBatch, PoolError> {
        assert!(chunk_size > 0, "chunks must hold at least one set");
        let start = Instant::now();
        let n = sampler.graph().n();
        let count = ids.len();
        if count == 0 {
            return Ok(ParBatch {
                rr: RrCollection::new(n),
                cost: 0,
                sentinel_hits: 0,
                elapsed: Duration::ZERO,
                chunk_workers: Vec::new(),
                chunk_costs: Vec::new(),
                chunk_hits: Vec::new(),
                frontier_levels: 0,
                frontier_width_sum: 0,
                frontier_peak_width: 0,
            });
        }
        let hook = relock(&self.chunk_hook).clone();

        struct ChunkOut {
            rr: RrCollection,
            worker: u32,
            cost: u64,
            sentinel_hits: u64,
        }

        let next = AtomicU64::new(0);
        let slots: Vec<OnceLock<ChunkOut>> = (0..count).map(|_| OnceLock::new()).collect();
        // Frontier telemetry is summed across workers as each finishes its
        // share of the batch (peak via max); the scratch contexts persist
        // across batches, so workers report deltas against their counters
        // at batch entry.
        let frontier_levels = AtomicU64::new(0);
        let frontier_width_sum = AtomicU64::new(0);
        let frontier_peak_width = AtomicU64::new(0);
        self.try_run_batch(&|worker, scratch| {
            let ctx = scratch.context_for(n);
            match sentinel {
                Some(s) => ctx.set_sentinel(s),
                None => ctx.clear_sentinel(),
            }
            let levels_before = ctx.frontier_levels;
            let width_before = ctx.frontier_width_sum;
            // Peak is a running max, not delta-able: reset it so the batch
            // reports its own widest level, not a previous batch's.
            ctx.frontier_peak_width = 0;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= count {
                    break;
                }
                if let Some(h) = &hook {
                    h(worker, ids[i]);
                }
                let cost_before = ctx.cost;
                let hits_before = ctx.sentinel_hits;
                let mut rng = rng_from_seed(chunk_seed(seed, ids[i]));
                let mut rr = RrCollection::new(n);
                rr.generate(sampler, ctx, &mut rng, chunk_size);
                let out = ChunkOut {
                    rr,
                    worker: worker as u32,
                    cost: ctx.cost - cost_before,
                    sentinel_hits: ctx.sentinel_hits - hits_before,
                };
                assert!(slots[i].set(out).is_ok(), "chunk {i} claimed twice");
            }
            frontier_levels.fetch_add(ctx.frontier_levels - levels_before, Ordering::Relaxed);
            frontier_width_sum.fetch_add(ctx.frontier_width_sum - width_before, Ordering::Relaxed);
            frontier_peak_width.fetch_max(ctx.frontier_peak_width, Ordering::Relaxed);
        })?;

        let mut rr = RrCollection::new(n);
        let (mut cost, mut hits) = (0u64, 0u64);
        let mut chunk_workers = Vec::with_capacity(count);
        let mut chunk_costs = Vec::with_capacity(count);
        let mut chunk_hits = Vec::with_capacity(count);
        for slot in &slots {
            let out = slot.get().expect("a claimed chunk was never generated");
            rr.extend_from(&out.rr);
            cost += out.cost;
            hits += out.sentinel_hits;
            chunk_workers.push(out.worker);
            chunk_costs.push(out.cost);
            chunk_hits.push(out.sentinel_hits);
        }
        Ok(ParBatch {
            rr,
            cost,
            sentinel_hits: hits,
            elapsed: start.elapsed(),
            chunk_workers,
            chunk_costs,
            chunk_hits,
            frontier_levels: frontier_levels.into_inner(),
            frontier_width_sum: frontier_width_sum.into_inner(),
            frontier_peak_width: frontier_peak_width.into_inner(),
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = relock(&self.shared.state);
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::par_generate_chunks_static;
    use crate::rr::RrStrategy;
    use std::sync::atomic::AtomicUsize;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    #[test]
    fn run_batch_visits_every_worker_once() {
        let pool = WorkerPool::new(4);
        let seen = [const { AtomicUsize::new(0) }; 4];
        pool.run_batch(&|w, _| {
            seen[w].fetch_add(1, Ordering::SeqCst);
        });
        for (w, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "worker {w}");
        }
    }

    #[test]
    fn pool_reused_across_batches() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 91);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let pool = WorkerPool::new(3);
        let reference = par_generate_chunks_static(&sampler, None, 0..8, 32, 1, 92);
        let mut grown = RrCollection::new(g.n());
        for r in [0..2u64, 2..5, 5..8] {
            grown.extend_from(&pool.generate_chunks(&sampler, None, r, 32, 92).rr);
        }
        assert_eq!(grown.len(), reference.rr.len());
        for i in 0..grown.len() {
            assert_eq!(grown.get(i), reference.rr.get(i), "set {i}");
        }
    }

    #[test]
    fn stealing_matches_static_reference() {
        let g = star_graph(400, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let reference = par_generate_chunks_static(&sampler, None, 3..19, 48, 1, 93);
        for threads in [2, 3, 5, 8] {
            let pool = WorkerPool::new(threads);
            let batch = pool.generate_chunks(&sampler, None, 3..19, 48, 93);
            assert_eq!(batch.rr.len(), reference.rr.len(), "threads={threads}");
            for i in 0..batch.rr.len() {
                assert_eq!(
                    batch.rr.get(i),
                    reference.rr.get(i),
                    "threads={threads} set {i}"
                );
            }
            assert_eq!(batch.cost, reference.cost, "threads={threads}");
        }
    }

    #[test]
    fn chunk_accounting_covers_every_chunk() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 94);
        let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
        let pool = WorkerPool::new(4);
        let batch = pool.generate_chunks(&sampler, None, 0..10, 16, 95);
        assert_eq!(batch.chunk_workers.len(), 10);
        assert_eq!(batch.chunk_costs.len(), 10);
        assert!(batch.chunk_workers.iter().all(|&w| (w as usize) < 4));
        assert_eq!(batch.chunk_costs.iter().sum::<u64>(), batch.cost);
        assert!(batch.chunk_costs.iter().all(|&c| c > 0));
        assert_eq!(batch.chunk_hits.len(), 10);
        assert!(batch.chunk_hits.iter().all(|&h| h == 0));
    }

    #[test]
    fn frontier_telemetry_is_per_batch_on_a_persistent_pool() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 103);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let pool = WorkerPool::new(3);
        let big = pool.generate_chunks(&sampler, None, 0..16, 64, 104);
        assert!(big.frontier_levels > 0);
        assert_eq!(big.frontier_width_sum, big.rr.total_nodes() as u64);
        // A later, smaller batch on the same pool must report its own
        // telemetry — the persistent scratch contexts must not leak the
        // big batch's counters (sums) or its widest level (peak).
        let small = pool.generate_chunks(&sampler, None, 0..1, 4, 104);
        assert!(small.frontier_levels > 0);
        assert!(small.frontier_levels < big.frontier_levels);
        assert_eq!(small.frontier_width_sum, small.rr.total_nodes() as u64);
        assert!(small.frontier_peak_width <= small.frontier_width_sum);
        // And the per-batch peak matches a fresh single-thread reference.
        let fresh = WorkerPool::new(1);
        let reference = fresh.generate_chunks(&sampler, None, 0..1, 4, 104);
        assert_eq!(small.frontier_peak_width, reference.frontier_peak_width);
        assert_eq!(small.frontier_levels, reference.frontier_levels);
    }

    #[test]
    fn sentinel_cleared_between_batches() {
        let g = barabasi_albert(300, 4, WeightModel::WcVariant { theta: 4.0 }, 96);
        let hub = (0..300u32).max_by_key(|&v| g.out_degree(v)).unwrap();
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let pool = WorkerPool::new(2);
        let trunc = pool.generate_chunks(&sampler, Some(&[hub]), 0..40, 32, 97);
        assert!(trunc.sentinel_hits > 0);
        assert_eq!(trunc.chunk_hits.iter().sum::<u64>(), trunc.sentinel_hits);
        // The next batch over the same pool must not inherit the sentinel.
        let plain = pool.generate_chunks(&sampler, None, 0..40, 32, 97);
        assert_eq!(plain.sentinel_hits, 0);
        assert!(plain.rr.avg_size() > trunc.rr.avg_size());
    }

    #[test]
    fn scratch_survives_graph_size_change() {
        let small = star_graph(50, WeightModel::Wc);
        let big = star_graph(500, WeightModel::Wc);
        let pool = WorkerPool::new(2);
        let a = pool.generate_chunks(
            &RrSampler::new(&small, RrStrategy::SubsimIc),
            None,
            0..4,
            16,
            98,
        );
        let b = pool.generate_chunks(
            &RrSampler::new(&big, RrStrategy::SubsimIc),
            None,
            0..4,
            16,
            98,
        );
        assert_eq!(a.rr.len(), 64);
        assert_eq!(b.rr.len(), 64);
        assert_eq!(b.rr.graph_n(), 500);
    }

    #[test]
    fn chunk_ids_match_range_subsets() {
        // Regenerating an arbitrary id subset must reproduce exactly the
        // chunks a contiguous generation would have put at those ids.
        let g = barabasi_albert(250, 3, WeightModel::Wc, 101);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let pool = WorkerPool::new(3);
        let chunk_size = 24;
        let full = pool.generate_chunks(&sampler, None, 0..12, chunk_size, 102);
        let ids = [1u64, 4, 5, 9, 11];
        for threads in [1, 2, 4] {
            let p = WorkerPool::new(threads);
            let sub = p.generate_chunk_ids(&sampler, None, &ids, chunk_size, 102);
            assert_eq!(sub.rr.len(), ids.len() * chunk_size);
            for (k, &c) in ids.iter().enumerate() {
                for j in 0..chunk_size {
                    assert_eq!(
                        sub.rr.get(k * chunk_size + j),
                        full.rr.get(c as usize * chunk_size + j),
                        "threads={threads} chunk {c} set {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn injected_panic_surfaces_typed_error_and_pool_survives() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 91);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let reference = pool.generate_chunks(&sampler, None, 0..8, 32, 92);
            pool.set_chunk_hook(Some(Arc::new(|_, chunk| {
                if chunk == 5 {
                    panic!("injected fault");
                }
            })));
            let err = pool
                .try_generate_chunks(&sampler, None, 0..8, 32, 92)
                .unwrap_err();
            assert_eq!(err, PoolError::WorkerPanicked, "threads={threads}");
            // The same pool, hook cleared, must produce the bit-identical
            // batch: workers survived and no scratch state leaked.
            pool.set_chunk_hook(None);
            let after = pool.generate_chunks(&sampler, None, 0..8, 32, 92);
            assert_eq!(after.rr.len(), reference.rr.len(), "threads={threads}");
            for i in 0..after.rr.len() {
                assert_eq!(
                    after.rr.get(i),
                    reference.rr.get(i),
                    "threads={threads} set {i}"
                );
            }
        }
    }

    #[test]
    fn pool_survives_repeated_worker_panics() {
        let g = star_graph(60, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::VanillaIc);
        let pool = WorkerPool::new(3);
        pool.set_chunk_hook(Some(Arc::new(|_, _| panic!("injected fault"))));
        for round in 0..3 {
            let err = pool
                .try_generate_chunks(&sampler, None, 0..4, 16, 7)
                .unwrap_err();
            assert_eq!(err, PoolError::WorkerPanicked, "round {round}");
        }
        pool.set_chunk_hook(None);
        let batch = pool.generate_chunks(&sampler, None, 0..4, 16, 7);
        assert_eq!(batch.rr.len(), 64);
    }

    #[test]
    #[should_panic(expected = "a pool worker panicked during the batch")]
    fn run_batch_still_panics_on_worker_panic() {
        let pool = WorkerPool::new(2);
        pool.run_batch(&|w, _| {
            if w == 1 {
                panic!("injected fault");
            }
        });
    }

    #[test]
    fn try_run_batch_catches_caller_panic() {
        let pool = WorkerPool::new(2);
        assert_eq!(
            pool.try_run_batch(&|w, _| {
                if w == 0 {
                    panic!("injected fault");
                }
            }),
            Err(PoolError::WorkerPanicked)
        );
        // The next batch still visits every worker.
        let seen = [const { AtomicUsize::new(0) }; 2];
        pool.try_run_batch(&|w, _| {
            seen[w].fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        for (w, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "worker {w}");
        }
    }

    #[test]
    fn empty_id_list_is_a_noop() {
        let g = star_graph(20, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let pool = WorkerPool::new(2);
        let batch = pool.generate_chunk_ids(&sampler, None, &[], 32, 100);
        assert!(batch.rr.is_empty());
        assert!(batch.chunk_costs.is_empty());
    }

    #[test]
    fn empty_range_is_a_noop() {
        let g = star_graph(20, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let pool = WorkerPool::new(3);
        let batch = pool.generate_chunks(&sampler, None, 7..7, 32, 99);
        assert!(batch.rr.is_empty());
        assert!(batch.chunk_workers.is_empty());
    }
}
