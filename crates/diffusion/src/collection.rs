//! Flat-arena storage for collections of RR sets.
//!
//! The IM algorithms hold `θ` RR sets at a time (doubling between
//! iterations), then run greedy max-coverage over them. Storing every set
//! in its own `Vec` would cost one allocation per set and scatter the
//! nodes across the heap; [`RrCollection`] instead appends all sets into
//! one arena with an offsets array, and [`InvertedIndex`] provides the
//! node → set-ids view the greedy phase consumes.

use crate::rr::{RrContext, RrSampler};
use rand::Rng;
use subsim_graph::NodeId;

/// A growable collection of RR sets over a graph with `n` nodes.
#[derive(Debug, Clone)]
pub struct RrCollection {
    n: usize,
    offsets: Vec<usize>,
    nodes: Vec<NodeId>,
}

impl RrCollection {
    /// Creates an empty collection for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        RrCollection {
            n,
            offsets: vec![0],
            nodes: Vec::new(),
        }
    }

    /// Node count of the underlying graph.
    pub fn graph_n(&self) -> usize {
        self.n
    }

    /// Number of stored RR sets.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one set.
    pub fn push(&mut self, set: &[NodeId]) {
        self.nodes.extend_from_slice(set);
        self.offsets.push(self.nodes.len());
    }

    /// Appends every set of `other` in one arena-level copy.
    ///
    /// Equivalent to `for s in other.iter() { self.push(s) }` but performs
    /// exactly two bulk `extend`s (nodes, then offsets rebased onto this
    /// arena's length) instead of one copy per set — the merge path of
    /// [`crate::parallel::par_generate`] and the index top-up path both
    /// splice worker batches with this. Both collections must be over the
    /// same graph.
    pub fn extend_from(&mut self, other: &RrCollection) {
        assert_eq!(
            self.n, other.n,
            "cannot splice collections over different graphs"
        );
        let base = self.nodes.len();
        self.nodes.extend_from_slice(&other.nodes);
        self.offsets.reserve(other.len());
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| o + base));
    }

    /// The `i`-th set.
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.nodes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over all sets.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total number of node entries across all sets.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Average set size (the quantity Figure 3(b) reports); 0 if empty.
    pub fn avg_size(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.nodes.len() as f64 / self.len() as f64
        }
    }

    /// Generates `count` additional random RR sets with `sampler`.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        sampler: &RrSampler<'_>,
        ctx: &mut RrContext,
        rng: &mut R,
        count: usize,
    ) {
        debug_assert_eq!(sampler.graph().n(), self.n);
        self.offsets.reserve(count);
        for _ in 0..count {
            sampler.generate(ctx, rng);
            self.push(ctx.last());
        }
    }

    /// Coverage `Λ_R(S)`: the number of stored sets intersecting `seeds`.
    pub fn coverage_of(&self, seeds: &[NodeId]) -> usize {
        let mut mask = vec![false; self.n];
        for &s in seeds {
            mask[s as usize] = true;
        }
        self.iter()
            .filter(|set| set.iter().any(|&v| mask[v as usize]))
            .count()
    }

    /// Splits off the sets that do **not** intersect `seeds` (Algorithm 8
    /// line 5: the sentinel-covered sets contribute zero marginal coverage
    /// to further greedy picks). Returns `(kept, covered_count)`.
    pub fn filter_not_covering(&self, seeds: &[NodeId]) -> (RrCollection, usize) {
        let mut mask = vec![false; self.n];
        for &s in seeds {
            mask[s as usize] = true;
        }
        let mut kept = RrCollection::new(self.n);
        let mut covered = 0usize;
        for set in self.iter() {
            if set.iter().any(|&v| mask[v as usize]) {
                covered += 1;
            } else {
                kept.push(set);
            }
        }
        (kept, covered)
    }
}

/// Node → containing-set-ids index over an [`RrCollection`].
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    offsets: Vec<usize>,
    set_ids: Vec<u32>,
}

impl InvertedIndex {
    /// Builds the index in one counting-sort pass, `O(n + Σ|R_i|)`.
    pub fn build(rr: &RrCollection) -> Self {
        let n = rr.graph_n();
        let mut offsets = vec![0usize; n + 1];
        for set in rr.iter() {
            for &v in set {
                offsets[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut set_ids = vec![0u32; *offsets.last().unwrap()];
        for (i, set) in rr.iter().enumerate() {
            for &v in set {
                set_ids[cursor[v as usize]] = i as u32;
                cursor[v as usize] += 1;
            }
        }
        InvertedIndex { offsets, set_ids }
    }

    /// Ids of the sets containing `v`.
    pub fn sets_containing(&self, v: NodeId) -> &[u32] {
        let v = v as usize;
        &self.set_ids[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of sets containing `v` (the node's initial coverage count).
    pub fn degree(&self, v: NodeId) -> usize {
        self.sets_containing(v).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RrStrategy;
    use subsim_graph::generators::star_graph;
    use subsim_graph::WeightModel;
    use subsim_sampling::rng_from_seed;

    fn sample_collection() -> RrCollection {
        let mut rr = RrCollection::new(5);
        rr.push(&[0, 1]);
        rr.push(&[2]);
        rr.push(&[1, 3, 4]);
        rr
    }

    #[test]
    fn push_get_iter() {
        let rr = sample_collection();
        assert_eq!(rr.len(), 3);
        assert_eq!(rr.get(0), &[0, 1]);
        assert_eq!(rr.get(2), &[1, 3, 4]);
        assert_eq!(rr.total_nodes(), 6);
        assert!((rr.avg_size() - 2.0).abs() < 1e-12);
        assert_eq!(rr.iter().count(), 3);
    }

    #[test]
    fn empty_collection() {
        let rr = RrCollection::new(4);
        assert!(rr.is_empty());
        assert_eq!(rr.avg_size(), 0.0);
        assert_eq!(rr.coverage_of(&[0]), 0);
    }

    #[test]
    fn coverage_counts_intersections() {
        let rr = sample_collection();
        assert_eq!(rr.coverage_of(&[1]), 2);
        assert_eq!(rr.coverage_of(&[2]), 1);
        assert_eq!(rr.coverage_of(&[0, 2]), 2);
        assert_eq!(rr.coverage_of(&[1, 2, 3]), 3);
        assert_eq!(rr.coverage_of(&[]), 0);
    }

    #[test]
    fn filter_not_covering_splits() {
        let rr = sample_collection();
        let (kept, covered) = rr.filter_not_covering(&[1]);
        assert_eq!(covered, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.get(0), &[2]);
    }

    #[test]
    fn extend_from_matches_per_set_push() {
        let g = star_graph(10, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(10);
        let mut rng = rng_from_seed(77);
        let mut a = RrCollection::new(10);
        a.generate(&sampler, &mut ctx, &mut rng, 40);
        let mut b = RrCollection::new(10);
        b.generate(&sampler, &mut ctx, &mut rng, 25);

        let mut bulk = a.clone();
        bulk.extend_from(&b);
        let mut per_set = a.clone();
        for set in b.iter() {
            per_set.push(set);
        }
        assert_eq!(bulk.len(), per_set.len());
        assert_eq!(bulk.total_nodes(), per_set.total_nodes());
        for i in 0..bulk.len() {
            assert_eq!(bulk.get(i), per_set.get(i), "set {i} diverges");
        }
    }

    #[test]
    fn extend_from_empty_is_noop_both_ways() {
        let mut a = sample_collection();
        let before = a.clone();
        a.extend_from(&RrCollection::new(5));
        assert_eq!(a.len(), before.len());
        let mut empty = RrCollection::new(5);
        empty.extend_from(&before);
        assert_eq!(empty.len(), before.len());
        for i in 0..before.len() {
            assert_eq!(empty.get(i), before.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "different graphs")]
    fn extend_from_rejects_mismatched_graphs() {
        let mut a = RrCollection::new(5);
        a.extend_from(&RrCollection::new(6));
    }

    #[test]
    fn inverted_index_roundtrip() {
        let rr = sample_collection();
        let idx = InvertedIndex::build(&rr);
        assert_eq!(idx.sets_containing(1), &[0, 2]);
        assert_eq!(idx.sets_containing(2), &[1]);
        assert_eq!(idx.degree(0), 1);
        assert_eq!(idx.degree(4), 1);
        let total: usize = (0..5).map(|v| idx.degree(v)).sum();
        assert_eq!(total, rr.total_nodes());
    }

    #[test]
    fn generate_appends() {
        let g = star_graph(10, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(10);
        let mut rng = rng_from_seed(31);
        let mut rr = RrCollection::new(10);
        rr.generate(&sampler, &mut ctx, &mut rng, 25);
        assert_eq!(rr.len(), 25);
        for set in rr.iter() {
            assert!(!set.is_empty());
        }
    }
}
