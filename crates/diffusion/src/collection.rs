//! Flat-arena storage for collections of RR sets.
//!
//! The IM algorithms hold `θ` RR sets at a time (doubling between
//! iterations), then run greedy max-coverage over them. Storing every set
//! in its own `Vec` would cost one allocation per set and scatter the
//! nodes across the heap; [`RrCollection`] instead appends all sets into
//! one arena with an offsets array, and [`InvertedIndex`] provides the
//! node → set-ids view the greedy phase consumes.

use crate::rr::{RrContext, RrSampler};
use rand::Rng;
use subsim_graph::NodeId;

/// A growable collection of RR sets over a graph with `n` nodes.
#[derive(Debug, Clone)]
pub struct RrCollection {
    n: usize,
    offsets: Vec<usize>,
    nodes: Vec<NodeId>,
}

impl RrCollection {
    /// Creates an empty collection for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        RrCollection {
            n,
            offsets: vec![0],
            nodes: Vec::new(),
        }
    }

    /// Node count of the underlying graph.
    pub fn graph_n(&self) -> usize {
        self.n
    }

    /// Number of stored RR sets.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one set.
    pub fn push(&mut self, set: &[NodeId]) {
        self.nodes.extend_from_slice(set);
        self.offsets.push(self.nodes.len());
    }

    /// Appends every set of `other` in one arena-level copy.
    ///
    /// Equivalent to `for s in other.iter() { self.push(s) }` but performs
    /// exactly two bulk `extend`s (nodes, then offsets rebased onto this
    /// arena's length) instead of one copy per set — the merge path of
    /// [`crate::parallel::par_generate`] and the index top-up path both
    /// splice worker batches with this. Both collections must be over the
    /// same graph.
    pub fn extend_from(&mut self, other: &RrCollection) {
        assert_eq!(
            self.n, other.n,
            "cannot splice collections over different graphs"
        );
        let base = self.nodes.len();
        self.nodes.extend_from_slice(&other.nodes);
        self.offsets.reserve(other.len());
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| o + base));
    }

    /// Appends sets `sets.start..sets.end` of `other` in one arena-level
    /// copy — the repair path splices the clean spans of an old pool
    /// around freshly regenerated chunks with this. Both collections must
    /// be over the same graph.
    pub fn extend_from_range(&mut self, other: &RrCollection, sets: std::ops::Range<usize>) {
        assert_eq!(
            self.n, other.n,
            "cannot splice collections over different graphs"
        );
        assert!(sets.end <= other.len(), "range exceeds source collection");
        if sets.is_empty() {
            return;
        }
        let (lo, hi) = (other.offsets[sets.start], other.offsets[sets.end]);
        let base = self.nodes.len();
        self.nodes.extend_from_slice(&other.nodes[lo..hi]);
        self.offsets.reserve(sets.len());
        self.offsets.extend(
            other.offsets[sets.start + 1..=sets.end]
                .iter()
                .map(|&o| base + (o - lo)),
        );
    }

    /// The `i`-th set.
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.nodes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over all sets.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total number of node entries across all sets.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Average set size (the quantity Figure 3(b) reports); 0 if empty.
    pub fn avg_size(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.nodes.len() as f64 / self.len() as f64
        }
    }

    /// Generates `count` additional random RR sets with `sampler`.
    ///
    /// Pre-reserves the node arena from the running average set size, so a
    /// long top-up sequence doubles the arena a handful of times instead
    /// of once per growth spurt.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        sampler: &RrSampler<'_>,
        ctx: &mut RrContext,
        rng: &mut R,
        count: usize,
    ) {
        debug_assert_eq!(sampler.graph().n(), self.n);
        self.offsets.reserve(count);
        if !self.is_empty() {
            let avg = self.nodes.len() / self.len() + 1;
            self.nodes.reserve(count.saturating_mul(avg));
        }
        for _ in 0..count {
            sampler.generate(ctx, rng);
            self.push(ctx.last());
        }
    }

    /// Coverage `Λ_R(S)`: the number of stored sets intersecting `seeds`.
    ///
    /// Allocates a fresh mark buffer per call; loops should hold a
    /// [`NodeMarks`] and use [`RrCollection::coverage_of_with`].
    pub fn coverage_of(&self, seeds: &[NodeId]) -> usize {
        self.coverage_of_with(seeds, &mut NodeMarks::new())
    }

    /// [`RrCollection::coverage_of`] with caller-owned mark scratch:
    /// repeated calls reuse `marks`' buffer instead of allocating an
    /// `n`-slot mask each time.
    pub fn coverage_of_with(&self, seeds: &[NodeId], marks: &mut NodeMarks) -> usize {
        marks.begin(self.n);
        for &s in seeds {
            marks.mark(s);
        }
        self.iter()
            .filter(|set| set.iter().any(|&v| marks.is_marked(v)))
            .count()
    }

    /// Splits off the sets that do **not** intersect `seeds` (Algorithm 8
    /// line 5: the sentinel-covered sets contribute zero marginal coverage
    /// to further greedy picks). Returns `(kept, covered_count)`.
    ///
    /// Allocates a fresh mark buffer per call; loops should hold a
    /// [`NodeMarks`] and use [`RrCollection::filter_not_covering_with`].
    pub fn filter_not_covering(&self, seeds: &[NodeId]) -> (RrCollection, usize) {
        self.filter_not_covering_with(seeds, &mut NodeMarks::new())
    }

    /// [`RrCollection::filter_not_covering`] with caller-owned mark
    /// scratch.
    pub fn filter_not_covering_with(
        &self,
        seeds: &[NodeId],
        marks: &mut NodeMarks,
    ) -> (RrCollection, usize) {
        marks.begin(self.n);
        for &s in seeds {
            marks.mark(s);
        }
        let mut kept = RrCollection::new(self.n);
        let mut covered = 0usize;
        for set in self.iter() {
            if set.iter().any(|&v| marks.is_marked(v)) {
                covered += 1;
            } else {
                kept.push(set);
            }
        }
        (kept, covered)
    }
}

/// Reusable epoch-stamped node-mark scratch.
///
/// A `vec![false; n]` mask costs an `O(n)` allocation and clear per use;
/// `NodeMarks` instead stamps nodes with the current epoch and bumps the
/// epoch to "clear" in `O(1)`, refilling only on the (once per 2³²-1 uses)
/// epoch wrap or when the graph size changes. The same trick backs
/// [`RrContext`]'s visited array.
#[derive(Debug, Clone, Default)]
pub struct NodeMarks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl NodeMarks {
    /// Creates empty scratch; the first [`NodeMarks::begin`] sizes it.
    pub fn new() -> Self {
        NodeMarks::default()
    }

    /// Starts a fresh mark set over `n` nodes, clearing in `O(1)`.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp.clear();
            self.stamp.resize(n, 0);
            self.epoch = 1;
        } else {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                self.stamp.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// Marks `v` in the current epoch.
    #[inline]
    pub fn mark(&mut self, v: NodeId) {
        self.stamp[v as usize] = self.epoch;
    }

    /// Whether `v` was marked since the last [`NodeMarks::begin`].
    #[inline]
    pub fn is_marked(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Current epoch stamp. Test instrumentation (wrap-around coverage);
    /// not part of the stable API.
    #[doc(hidden)]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forces the epoch counter so tests can drive it to the wrap
    /// boundary without 2³² [`NodeMarks::begin`] calls. Stamps are left
    /// untouched — exactly the state a long-lived scratch would be in.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Offsets array of an [`InvertedIndex`], narrowed to `u32` whenever the
/// entry count allows it.
///
/// An RR pool with `Σ|R_i| ≤ u32::MAX` entries (every realistic pool: 4
/// billion entries is ~16 GiB of set ids alone) only needs 32-bit
/// offsets, which halves the index's offset-array memory. The `Wide`
/// variant is the checked fallback for larger pools.
#[derive(Debug, Clone)]
enum Offsets {
    Narrow(Vec<u32>),
    Wide(Vec<usize>),
}

/// Entry count below which [`InvertedIndex::build_parallel`] stays
/// sequential — scoped-thread spawn costs more than the counting pass.
const PARALLEL_BUILD_MIN_ENTRIES: usize = 1 << 18;

/// Whether `total` index entries fit 32-bit offsets.
#[inline]
fn narrow_offsets_fit(total: usize) -> bool {
    total <= u32::MAX as usize
}

/// Node → containing-set-ids index over an [`RrCollection`].
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    offsets: Offsets,
    set_ids: Vec<u32>,
}

impl InvertedIndex {
    /// Builds the index in one counting-sort pass, `O(n + Σ|R_i|)`.
    pub fn build(rr: &RrCollection) -> Self {
        Self::build_parallel(rr, 1)
    }

    /// [`InvertedIndex::build`] sharded across `threads` workers.
    ///
    /// Each worker counts a contiguous (entry-balanced) range of sets into
    /// its own histogram; the histograms are merged by prefix sum into the
    /// offsets array, and workers then fill their disjoint `set_ids`
    /// segments in parallel. Because worker ranges are contiguous in
    /// set-id order, each node's id list comes out identical to the
    /// sequential build — same index, `threads`× the counting/fill
    /// bandwidth. Falls back to the sequential pass for small pools (the
    /// spawn cost dominates) and for pools too large for 32-bit offsets.
    pub fn build_parallel(rr: &RrCollection, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let narrow = narrow_offsets_fit(rr.total_nodes());
        if narrow
            && threads > 1
            && rr.total_nodes() >= PARALLEL_BUILD_MIN_ENTRIES
            && rr.len() >= threads
        {
            Self::build_sharded(rr, threads)
        } else {
            Self::build_sequential(rr, narrow)
        }
    }

    fn build_sequential(rr: &RrCollection, narrow: bool) -> Self {
        let n = rr.graph_n();
        if narrow {
            let mut offsets = vec![0u32; n + 1];
            for &v in &rr.nodes {
                offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut set_ids = vec![0u32; *offsets.last().unwrap() as usize];
            for (i, set) in rr.iter().enumerate() {
                for &v in set {
                    set_ids[cursor[v as usize] as usize] = i as u32;
                    cursor[v as usize] += 1;
                }
            }
            InvertedIndex {
                offsets: Offsets::Narrow(offsets),
                set_ids,
            }
        } else {
            let mut offsets = vec![0usize; n + 1];
            for &v in &rr.nodes {
                offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut set_ids = vec![0u32; *offsets.last().unwrap()];
            for (i, set) in rr.iter().enumerate() {
                for &v in set {
                    set_ids[cursor[v as usize]] = i as u32;
                    cursor[v as usize] += 1;
                }
            }
            InvertedIndex {
                offsets: Offsets::Wide(offsets),
                set_ids,
            }
        }
    }

    /// The parallel counting-sort described on
    /// [`InvertedIndex::build_parallel`]. Only called with 32-bit-safe
    /// entry counts.
    fn build_sharded(rr: &RrCollection, threads: usize) -> Self {
        let n = rr.graph_n();
        let total = rr.total_nodes();
        debug_assert!(narrow_offsets_fit(total));
        let workers = threads.min(rr.len()).max(1);

        // Contiguous set ranges balanced by entry count: worker `w` owns
        // sets `split[w]..split[w + 1]`.
        let mut split = Vec::with_capacity(workers + 1);
        split.push(0usize);
        for w in 1..workers {
            let target = total * w / workers;
            let s = rr.offsets.partition_point(|&o| o < target).min(rr.len());
            split.push(s.max(*split.last().unwrap()));
        }
        split.push(rr.len());

        // Stage 1 (parallel): per-worker histograms over disjoint arena
        // slices.
        let hists: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let slice = &rr.nodes[rr.offsets[split[w]]..rr.offsets[split[w + 1]]];
                    scope.spawn(move || {
                        let mut hist = vec![0u32; n];
                        for &v in slice {
                            hist[v as usize] += 1;
                        }
                        hist
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("histogram worker panicked"))
                .collect()
        });

        // Stage 2 (sequential, O(n·workers)): merge histograms into the
        // offsets prefix sum and turn each histogram entry into its
        // worker's write cursor for that node.
        let mut hists = hists;
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            let mut cur = offsets[v];
            for hist in hists.iter_mut() {
                let c = hist[v];
                hist[v] = cur;
                cur += c;
            }
            offsets[v + 1] = cur;
        }
        debug_assert_eq!(*offsets.last().unwrap() as usize, total);

        // Stage 3 (parallel): fill `set_ids`. Worker `w` writes node `v`'s
        // ids only inside `hists[w][v]..hists[w][v] + count_w(v)`, and
        // those segments are disjoint across workers by construction.
        struct SharedIds(*mut u32);
        // SAFETY: workers write disjoint index sets (see above).
        unsafe impl Sync for SharedIds {}

        let mut set_ids = vec![0u32; total];
        let ids = SharedIds(set_ids.as_mut_ptr());
        std::thread::scope(|scope| {
            let ids = &ids;
            for (w, mut hist) in hists.drain(..).enumerate() {
                let (lo, hi) = (split[w], split[w + 1]);
                let rr = &rr;
                scope.spawn(move || {
                    for sid in lo..hi {
                        for &v in rr.get(sid) {
                            let pos = hist[v as usize];
                            hist[v as usize] += 1;
                            // SAFETY: `pos` lies in this worker's segment
                            // for node `v`; no other worker writes it.
                            unsafe { *ids.0.add(pos as usize) = sid as u32 };
                        }
                    }
                });
            }
        });

        InvertedIndex {
            offsets: Offsets::Narrow(offsets),
            set_ids,
        }
    }

    /// Whether the index uses 32-bit offsets.
    pub fn is_narrow(&self) -> bool {
        matches!(self.offsets, Offsets::Narrow(_))
    }

    #[inline]
    fn bounds(&self, v: usize) -> (usize, usize) {
        match &self.offsets {
            Offsets::Narrow(o) => (o[v] as usize, o[v + 1] as usize),
            Offsets::Wide(o) => (o[v], o[v + 1]),
        }
    }

    /// Ids of the sets containing `v`.
    pub fn sets_containing(&self, v: NodeId) -> &[u32] {
        let (lo, hi) = self.bounds(v as usize);
        &self.set_ids[lo..hi]
    }

    /// Number of sets containing `v` (the node's initial coverage count).
    pub fn degree(&self, v: NodeId) -> usize {
        let (lo, hi) = self.bounds(v as usize);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RrStrategy;
    use subsim_graph::generators::star_graph;
    use subsim_graph::WeightModel;
    use subsim_sampling::rng_from_seed;

    #[test]
    fn node_marks_epoch_wraps_without_stale_marks() {
        let mut marks = NodeMarks::new();
        marks.begin(8);
        marks.mark(3);
        marks.mark(5);
        // Drive the counter to the wrap boundary: the next begin() wraps
        // to 0, which must trigger a full refill — the stale stamps from
        // the pre-wrap epoch must not read as marked.
        marks.force_epoch(u32::MAX);
        marks.mark(7); // stamped u32::MAX, the worst-case stale value
        marks.begin(8);
        assert_eq!(marks.epoch(), 1, "wrap restarts the epoch after refill");
        for v in 0..8 {
            assert!(!marks.is_marked(v), "stale mark on {v} after wrap");
        }
        marks.mark(2);
        assert!(marks.is_marked(2));
        assert!(!marks.is_marked(7));
    }

    #[test]
    fn node_marks_survive_many_begins_near_wrap() {
        // A scratch parked just below the boundary stays correct across
        // several begin() generations spanning the wrap.
        let mut marks = NodeMarks::new();
        marks.begin(4);
        marks.force_epoch(u32::MAX - 3);
        for round in 0..8u32 {
            marks.begin(4);
            let v = (round % 4) as NodeId;
            marks.mark(v);
            for u in 0..4 {
                assert_eq!(
                    marks.is_marked(u),
                    u == v,
                    "round {round} epoch {}",
                    marks.epoch()
                );
            }
        }
    }

    #[test]
    fn coverage_identical_across_epoch_wrap() {
        // No stale-coverage reuse: the same coverage questions answered
        // through a wrapped scratch must match a fresh scratch per call.
        let rr = sample_collection();
        let seed_sets: &[&[NodeId]] = &[&[0], &[1, 3], &[2, 4], &[0, 1, 2, 3, 4]];
        let mut wrapped = NodeMarks::new();
        wrapped.begin(5);
        wrapped.force_epoch(u32::MAX - 2);
        for round in 0..6 {
            for seeds in seed_sets {
                let got = rr.coverage_of_with(seeds, &mut wrapped);
                let want = rr.coverage_of_with(seeds, &mut NodeMarks::new());
                assert_eq!(got, want, "round {round} seeds {seeds:?}");
                let (got_f, got_cov) = rr.filter_not_covering_with(seeds, &mut wrapped);
                let (want_f, want_cov) = rr.filter_not_covering_with(seeds, &mut NodeMarks::new());
                assert_eq!(got_cov, want_cov, "round {round} seeds {seeds:?}");
                assert_eq!(got_f.len(), want_f.len(), "round {round} seeds {seeds:?}");
            }
        }
    }

    fn sample_collection() -> RrCollection {
        let mut rr = RrCollection::new(5);
        rr.push(&[0, 1]);
        rr.push(&[2]);
        rr.push(&[1, 3, 4]);
        rr
    }

    #[test]
    fn push_get_iter() {
        let rr = sample_collection();
        assert_eq!(rr.len(), 3);
        assert_eq!(rr.get(0), &[0, 1]);
        assert_eq!(rr.get(2), &[1, 3, 4]);
        assert_eq!(rr.total_nodes(), 6);
        assert!((rr.avg_size() - 2.0).abs() < 1e-12);
        assert_eq!(rr.iter().count(), 3);
    }

    #[test]
    fn empty_collection() {
        let rr = RrCollection::new(4);
        assert!(rr.is_empty());
        assert_eq!(rr.avg_size(), 0.0);
        assert_eq!(rr.coverage_of(&[0]), 0);
    }

    #[test]
    fn coverage_counts_intersections() {
        let rr = sample_collection();
        assert_eq!(rr.coverage_of(&[1]), 2);
        assert_eq!(rr.coverage_of(&[2]), 1);
        assert_eq!(rr.coverage_of(&[0, 2]), 2);
        assert_eq!(rr.coverage_of(&[1, 2, 3]), 3);
        assert_eq!(rr.coverage_of(&[]), 0);
    }

    #[test]
    fn filter_not_covering_splits() {
        let rr = sample_collection();
        let (kept, covered) = rr.filter_not_covering(&[1]);
        assert_eq!(covered, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.get(0), &[2]);
    }

    #[test]
    fn extend_from_matches_per_set_push() {
        let g = star_graph(10, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(10);
        let mut rng = rng_from_seed(77);
        let mut a = RrCollection::new(10);
        a.generate(&sampler, &mut ctx, &mut rng, 40);
        let mut b = RrCollection::new(10);
        b.generate(&sampler, &mut ctx, &mut rng, 25);

        let mut bulk = a.clone();
        bulk.extend_from(&b);
        let mut per_set = a.clone();
        for set in b.iter() {
            per_set.push(set);
        }
        assert_eq!(bulk.len(), per_set.len());
        assert_eq!(bulk.total_nodes(), per_set.total_nodes());
        for i in 0..bulk.len() {
            assert_eq!(bulk.get(i), per_set.get(i), "set {i} diverges");
        }
    }

    #[test]
    fn extend_from_range_matches_per_set_push() {
        let g = star_graph(10, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(10);
        let mut rng = rng_from_seed(79);
        let mut src = RrCollection::new(10);
        src.generate(&sampler, &mut ctx, &mut rng, 30);
        for range in [0..0, 0..30, 5..5, 3..17, 29..30, 0..1] {
            let mut bulk = RrCollection::new(10);
            bulk.push(&[7]); // non-empty destination exercises rebasing
            bulk.extend_from_range(&src, range.clone());
            let mut per_set = RrCollection::new(10);
            per_set.push(&[7]);
            for i in range.clone() {
                per_set.push(src.get(i));
            }
            assert_eq!(bulk.len(), per_set.len(), "range {range:?}");
            for i in 0..bulk.len() {
                assert_eq!(bulk.get(i), per_set.get(i), "range {range:?} set {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "range exceeds source collection")]
    fn extend_from_range_rejects_out_of_bounds() {
        let mut a = RrCollection::new(5);
        a.extend_from_range(&sample_collection(), 2..4);
    }

    #[test]
    fn extend_from_empty_is_noop_both_ways() {
        let mut a = sample_collection();
        let before = a.clone();
        a.extend_from(&RrCollection::new(5));
        assert_eq!(a.len(), before.len());
        let mut empty = RrCollection::new(5);
        empty.extend_from(&before);
        assert_eq!(empty.len(), before.len());
        for i in 0..before.len() {
            assert_eq!(empty.get(i), before.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "different graphs")]
    fn extend_from_rejects_mismatched_graphs() {
        let mut a = RrCollection::new(5);
        a.extend_from(&RrCollection::new(6));
    }

    #[test]
    fn inverted_index_roundtrip() {
        let rr = sample_collection();
        let idx = InvertedIndex::build(&rr);
        assert_eq!(idx.sets_containing(1), &[0, 2]);
        assert_eq!(idx.sets_containing(2), &[1]);
        assert_eq!(idx.degree(0), 1);
        assert_eq!(idx.degree(4), 1);
        let total: usize = (0..5).map(|v| idx.degree(v)).sum();
        assert_eq!(total, rr.total_nodes());
    }

    #[test]
    fn node_marks_reuse_matches_fresh_masks() {
        let rr = sample_collection();
        let mut marks = NodeMarks::new();
        for seeds in [&[1u32][..], &[2], &[0, 2], &[1, 2, 3], &[]] {
            assert_eq!(
                rr.coverage_of_with(seeds, &mut marks),
                rr.coverage_of(seeds),
                "seeds {seeds:?}"
            );
        }
        let (kept_scratch, cov_scratch) = rr.filter_not_covering_with(&[1], &mut marks);
        let (kept_fresh, cov_fresh) = rr.filter_not_covering(&[1]);
        assert_eq!(cov_scratch, cov_fresh);
        assert_eq!(kept_scratch.len(), kept_fresh.len());
        for i in 0..kept_scratch.len() {
            assert_eq!(kept_scratch.get(i), kept_fresh.get(i));
        }
    }

    #[test]
    fn node_marks_survive_graph_size_change() {
        let mut marks = NodeMarks::new();
        marks.begin(3);
        marks.mark(2);
        assert!(marks.is_marked(2));
        marks.begin(8);
        assert!(!marks.is_marked(2));
        marks.mark(7);
        marks.begin(8);
        assert!(!marks.is_marked(7), "epoch bump must clear marks");
    }

    #[test]
    fn narrow_offsets_boundary() {
        assert!(narrow_offsets_fit(u32::MAX as usize));
        assert!(!narrow_offsets_fit(u32::MAX as usize + 1));
    }

    #[test]
    fn small_indexes_are_narrow() {
        let idx = InvertedIndex::build(&sample_collection());
        assert!(idx.is_narrow());
    }

    #[test]
    fn wide_fallback_matches_narrow_build() {
        let g = star_graph(60, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(60);
        let mut rng = rng_from_seed(41);
        let mut rr = RrCollection::new(60);
        rr.generate(&sampler, &mut ctx, &mut rng, 500);

        let narrow = InvertedIndex::build_sequential(&rr, true);
        let wide = InvertedIndex::build_sequential(&rr, false);
        assert!(narrow.is_narrow());
        assert!(!wide.is_narrow());
        for v in 0..60u32 {
            assert_eq!(
                narrow.sets_containing(v),
                wide.sets_containing(v),
                "node {v}"
            );
            assert_eq!(narrow.degree(v), wide.degree(v));
        }
    }

    #[test]
    fn sharded_build_matches_sequential() {
        let g = star_graph(40, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(40);
        let mut rng = rng_from_seed(43);
        let mut rr = RrCollection::new(40);
        rr.generate(&sampler, &mut ctx, &mut rng, 3000);

        let sequential = InvertedIndex::build(&rr);
        for threads in [2, 3, 5, 8] {
            let sharded = InvertedIndex::build_sharded(&rr, threads);
            assert!(sharded.is_narrow());
            for v in 0..40u32 {
                assert_eq!(
                    sharded.sets_containing(v),
                    sequential.sets_containing(v),
                    "threads={threads} node {v}"
                );
            }
        }
    }

    #[test]
    fn sharded_build_handles_skewed_and_empty_sets() {
        // Hand-built pool with empty sets, an all-nodes set, and heavy
        // repetition of one node — the shapes that break split balancing.
        let mut rr = RrCollection::new(6);
        rr.push(&[]);
        rr.push(&[0, 1, 2, 3, 4, 5]);
        for _ in 0..50 {
            rr.push(&[3]);
        }
        rr.push(&[]);
        rr.push(&[5, 0]);
        let sequential = InvertedIndex::build(&rr);
        for threads in [2, 4, 7] {
            let sharded = InvertedIndex::build_sharded(&rr, threads);
            for v in 0..6u32 {
                assert_eq!(
                    sharded.sets_containing(v),
                    sequential.sets_containing(v),
                    "threads={threads} node {v}"
                );
            }
        }
    }

    #[test]
    fn build_parallel_agrees_with_build_over_threshold_gate() {
        let g = star_graph(30, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(30);
        let mut rng = rng_from_seed(47);
        let mut rr = RrCollection::new(30);
        rr.generate(&sampler, &mut ctx, &mut rng, 1000);
        let a = InvertedIndex::build(&rr);
        let b = InvertedIndex::build_parallel(&rr, 4);
        for v in 0..30u32 {
            assert_eq!(a.sets_containing(v), b.sets_containing(v), "node {v}");
        }
    }

    #[test]
    fn generate_appends() {
        let g = star_graph(10, WeightModel::Wc);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = crate::rr::RrContext::new(10);
        let mut rng = rng_from_seed(31);
        let mut rr = RrCollection::new(10);
        rr.generate(&sampler, &mut ctx, &mut rng, 25);
        assert_eq!(rr.len(), 25);
        for set in rr.iter() {
            assert!(!set.is_empty());
        }
    }
}
