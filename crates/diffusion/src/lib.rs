//! Cascade substrate: forward simulation and reverse-reachable (RR) set
//! generation for the Independent Cascade (IC) and Linear Threshold (LT)
//! models.
//!
//! The paper's pipeline is: sample many random RR sets, then run greedy
//! max-coverage over them. This crate owns the sampling half:
//!
//! - [`forward`] — forward Monte-Carlo cascade simulation, used both as
//!   the ground-truth influence estimator (`Figure 5`) and as the oracle
//!   that validates RR-set unbiasedness (`n · Pr[S ∩ R ≠ ∅] = 𝕀(S)`,
//!   paper Lemma 1).
//! - [`rr`] — the RR-set generators: **vanilla** per-edge coin flipping
//!   (Algorithm 2), **SUBSIM** geometric-skip sampling (Algorithm 3) with
//!   the index-free sorted sampler for general IC (Section 3.3), the
//!   optional bucket-jump index, and the **LT** reverse random path. Every
//!   generator honours an optional *sentinel set* (Algorithm 5): the
//!   traversal stops the moment a sentinel node is activated, which is the
//!   engine of HIST's phase 2.
//! - [`collection`] — a flat-arena [`collection::RrCollection`] storing
//!   sets contiguously, with size/cost statistics and an inverted
//!   node → set index for the greedy phase.
//! - [`parallel`] — scoped-thread batch generation (deterministic
//!   per-thread seeding), plus chunked generation whose output is
//!   independent of the thread count — the top-up primitive behind
//!   `subsim-index`'s incrementally grown pools.
//! - [`pool`] — the persistent [`pool::WorkerPool`] behind chunked
//!   generation: spawned once, reused across top-ups, scheduling chunks
//!   by work-stealing so skewed chunk costs cannot serialize a batch.
//! - [`estimator`] — scratch-reusing (and optionally parallel) cascade
//!   simulation for evaluating many seed sets cheaply (Figure 5).
//! - [`serialize`] — a versioned binary format for persisting RR
//!   collections, so expensive samples can be generated once and reused.

#![warn(missing_docs)]

pub mod collection;
pub mod estimator;
pub mod forward;
pub mod parallel;
pub mod pool;
pub mod rr;
pub mod serialize;

pub use collection::{InvertedIndex, NodeMarks, RrCollection};
pub use estimator::{par_influence, InfluenceEstimator};
pub use forward::{mc_influence, rr_influence, simulate_ic, simulate_lt, CascadeModel};
pub use parallel::{
    chunk_seed, par_generate, par_generate_chunks, par_generate_chunks_static, ParBatch,
};
pub use pool::{ChunkHook, PoolError, WorkerPool, WorkerScratch};
pub use rr::{RrContext, RrSampler, RrStrategy};
pub use serialize::{read_rr_collection, write_rr_collection};

/// Commonly used items.
pub mod prelude {
    pub use crate::collection::RrCollection;
    pub use crate::forward::{mc_influence, rr_influence, CascadeModel};
    pub use crate::rr::{RrContext, RrSampler, RrStrategy};
}
