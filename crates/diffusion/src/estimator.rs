//! Reusable, optionally parallel influence estimation.
//!
//! [`crate::forward::mc_influence`] allocates fresh scratch per cascade;
//! fine for tests, wasteful when an experiment evaluates hundreds of seed
//! sets (Figure 5). [`InfluenceEstimator`] keeps epoch-stamped scratch
//! across calls and can fan the cascades out over threads, with the same
//! deterministic per-worker seeding scheme as [`crate::parallel`].

use crate::forward::CascadeModel;
use rand::Rng;
use subsim_graph::{Graph, InProbs, NodeId};
use subsim_sampling::rng_from_seed;

/// Scratch-reusing cascade simulator.
pub struct InfluenceEstimator<'g> {
    g: &'g Graph,
    model: CascadeModel,
    /// Epoch-stamped activation marks (no clearing between runs).
    active: Vec<u32>,
    epoch: u32,
    /// Epoch-stamped LT thresholds, drawn lazily per run.
    threshold: Vec<(u32, f64)>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl<'g> InfluenceEstimator<'g> {
    /// Creates an estimator for `g` under `model`.
    pub fn new(g: &'g Graph, model: CascadeModel) -> Self {
        InfluenceEstimator {
            g,
            model,
            active: vec![0; g.n()],
            epoch: 0,
            threshold: vec![(0, 0.0); g.n()],
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    #[inline]
    fn activate(&mut self, v: NodeId) -> bool {
        let slot = &mut self.active[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Runs one cascade; returns the number of activated nodes.
    pub fn run_once<R: Rng + ?Sized>(&mut self, seeds: &[NodeId], rng: &mut R) -> usize {
        if self.epoch == u32::MAX {
            self.active.fill(0);
            self.threshold.iter_mut().for_each(|t| t.0 = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.frontier.clear();
        let mut count = 0usize;
        for &s in seeds {
            if self.activate(s) {
                self.frontier.push(s);
                count += 1;
            }
        }
        while !self.frontier.is_empty() {
            self.next.clear();
            // Swap out to appease the borrow checker; swapped back below.
            let mut frontier = std::mem::take(&mut self.frontier);
            for &u in &frontier {
                for &v in self.g.out_neighbors(u) {
                    if self.active[v as usize] == self.epoch {
                        continue;
                    }
                    let fire = match self.model {
                        CascadeModel::Ic => {
                            let p = self.g.prob_of_edge(u, v).expect("out-neighbor edge exists");
                            rng.gen::<f64>() < p
                        }
                        CascadeModel::Lt => {
                            let slot = &mut self.threshold[v as usize];
                            if slot.0 != self.epoch {
                                *slot = (self.epoch, rng.gen::<f64>());
                            }
                            let lambda = slot.1;
                            activated_in_weight(self.g, &self.active, self.epoch, v) >= lambda
                        }
                    };
                    if fire {
                        self.active[v as usize] = self.epoch;
                        self.next.push(v);
                        count += 1;
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut self.next);
            self.frontier = frontier;
        }
        count
    }

    /// Mean influence over `runs` cascades, seeded from `seed`.
    pub fn estimate(&mut self, seeds: &[NodeId], runs: usize, seed: u64) -> f64 {
        assert!(runs > 0);
        let mut rng = rng_from_seed(seed);
        let total: u64 = (0..runs)
            .map(|_| self.run_once(seeds, &mut rng) as u64)
            .sum();
        total as f64 / runs as f64
    }
}

/// Sum of `p(u, v)` over epoch-active in-neighbors of `v`.
fn activated_in_weight(g: &Graph, active: &[u32], epoch: u32, v: NodeId) -> f64 {
    let nbrs = g.in_neighbors(v);
    match g.in_probs(v) {
        InProbs::Uniform(p) => {
            p * nbrs
                .iter()
                .filter(|&&u| active[u as usize] == epoch)
                .count() as f64
        }
        InProbs::PerEdge(ps) => nbrs
            .iter()
            .zip(ps)
            .filter(|(&u, _)| active[u as usize] == epoch)
            .map(|(_, &p)| p)
            .sum(),
    }
}

/// Parallel mean influence over `runs` cascades split across `threads`
/// workers (deterministic for a fixed `(seed, threads, runs)` triple).
pub fn par_influence(
    g: &Graph,
    seeds: &[NodeId],
    model: CascadeModel,
    runs: usize,
    threads: usize,
    seed: u64,
) -> f64 {
    assert!(threads > 0 && runs > 0);
    if threads == 1 {
        return InfluenceEstimator::new(g, model).estimate(seeds, runs, seed);
    }
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let quota = runs / threads + usize::from(w < runs % threads);
                scope.spawn(move || {
                    let mut est = InfluenceEstimator::new(g, model);
                    let mut rng =
                        rng_from_seed(seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    (0..quota)
                        .map(|_| est.run_once(seeds, &mut rng) as u64)
                        .sum::<u64>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    });
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::mc_influence;
    use subsim_graph::generators::{barabasi_albert, path_graph, star_graph};
    use subsim_graph::WeightModel;

    #[test]
    fn matches_mc_influence_statistically() {
        let g = barabasi_albert(150, 4, WeightModel::Wc, 21);
        let seeds = [0u32, 3, 9];
        let a = mc_influence(&g, &seeds, CascadeModel::Ic, 30_000, 22);
        let b = InfluenceEstimator::new(&g, CascadeModel::Ic).estimate(&seeds, 30_000, 23);
        assert!((a - b).abs() < 0.05 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn lt_matches_mc_influence_statistically() {
        let g = barabasi_albert(120, 4, WeightModel::Lt, 24);
        let seeds = [1u32, 5];
        let a = mc_influence(&g, &seeds, CascadeModel::Lt, 30_000, 25);
        let b = InfluenceEstimator::new(&g, CascadeModel::Lt).estimate(&seeds, 30_000, 26);
        assert!((a - b).abs() < 0.05 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn deterministic_chain() {
        let g = path_graph(7, WeightModel::UniformIc { p: 1.0 });
        let mut est = InfluenceEstimator::new(&g, CascadeModel::Ic);
        assert_eq!(est.estimate(&[0], 10, 27), 7.0);
        // Reuse across calls with different seeds must not leak state.
        assert_eq!(est.estimate(&[3], 10, 28), 4.0);
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let g = star_graph(100, WeightModel::UniformIc { p: 0.4 });
        let seq = par_influence(&g, &[0], CascadeModel::Ic, 40_000, 1, 29);
        let par = par_influence(&g, &[0], CascadeModel::Ic, 40_000, 4, 29);
        assert!((seq - par).abs() < 0.05 * seq, "{seq} vs {par}");
    }

    #[test]
    fn parallel_is_deterministic() {
        let g = barabasi_albert(100, 3, WeightModel::Wc, 30);
        let a = par_influence(&g, &[0, 1], CascadeModel::Ic, 999, 3, 31);
        let b = par_influence(&g, &[0, 1], CascadeModel::Ic, 999, 3, 31);
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_wrap_resets() {
        let g = path_graph(3, WeightModel::UniformIc { p: 1.0 });
        let mut est = InfluenceEstimator::new(&g, CascadeModel::Ic);
        est.epoch = u32::MAX - 1;
        for _ in 0..5 {
            let mut rng = rng_from_seed(32);
            assert_eq!(est.run_once(&[0], &mut rng), 3);
        }
    }
}
