//! Forward cascade simulation and Monte-Carlo influence estimation.
//!
//! These implement the generative processes of Section 2.1 of the paper
//! directly (timestamped activation waves). They serve as ground truth:
//! `𝕀(S)` estimated here must match `n · Pr[S ∩ R ≠ ∅]` estimated from RR
//! sets (Lemma 1), which the integration tests assert.

use rand::Rng;
use subsim_graph::{Graph, InProbs, NodeId};
use subsim_sampling::rng_from_seed;

/// The diffusion model a cascade follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CascadeModel {
    /// Independent Cascade: a fresh activation attempt per edge.
    Ic,
    /// Linear Threshold: nodes activate when accumulated in-weight passes
    /// a uniform random threshold.
    Lt,
}

/// Runs one IC cascade from `seeds`; returns the number of activated
/// nodes (including the seeds).
///
/// Duplicate seeds are counted once. Nodes out of range panic.
pub fn simulate_ic<R: Rng + ?Sized>(g: &Graph, seeds: &[NodeId], rng: &mut R) -> usize {
    let mut active = vec![false; g.n()];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
        }
    }
    let mut count = frontier.len();
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        for &u in &frontier {
            for &v in g.out_neighbors(u) {
                if active[v as usize] {
                    continue;
                }
                let p = g.prob_of_edge(u, v).expect("out-neighbor edge must exist");
                if rng.gen::<f64>() < p {
                    active[v as usize] = true;
                    next.push(v);
                    count += 1;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    count
}

/// Runs one LT cascade from `seeds`; returns the number of activated
/// nodes (including the seeds).
///
/// Thresholds `λ_v ~ U[0, 1]` are drawn lazily the first time a node is
/// touched. A node activates when the summed weight of its *activated*
/// in-neighbors reaches `λ_v` (paper Section 2.1).
pub fn simulate_lt<R: Rng + ?Sized>(g: &Graph, seeds: &[NodeId], rng: &mut R) -> usize {
    let n = g.n();
    let mut active = vec![false; n];
    let mut threshold: Vec<f64> = vec![f64::NAN; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
        }
    }
    let mut count = frontier.len();
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        for &u in &frontier {
            for &v in g.out_neighbors(u) {
                let vi = v as usize;
                if active[vi] {
                    continue;
                }
                if threshold[vi].is_nan() {
                    threshold[vi] = rng.gen::<f64>();
                }
                // Re-sum the activated in-weight of v. O(d_in) per touch,
                // correct for both uniform and per-edge weights.
                let acc = activated_in_weight(g, &active, v);
                if acc >= threshold[vi] {
                    active[vi] = true;
                    next.push(v);
                    count += 1;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    count
}

/// Sum of `p(u, v)` over activated in-neighbors `u` of `v`.
fn activated_in_weight(g: &Graph, active: &[bool], v: NodeId) -> f64 {
    let nbrs = g.in_neighbors(v);
    match g.in_probs(v) {
        InProbs::Uniform(p) => p * nbrs.iter().filter(|&&u| active[u as usize]).count() as f64,
        InProbs::PerEdge(ps) => nbrs
            .iter()
            .zip(ps)
            .filter(|(&u, _)| active[u as usize])
            .map(|(_, &p)| p)
            .sum(),
    }
}

/// Monte-Carlo estimate of the expected influence `𝕀(S)` of `seeds` under
/// `model`, averaged over `runs` independent cascades seeded from `seed`.
///
/// ```
/// use subsim_diffusion::{mc_influence, CascadeModel};
/// use subsim_graph::{generators, WeightModel};
///
/// // Deterministic chain: seeding the head reaches all 5 nodes.
/// let g = generators::path_graph(5, WeightModel::UniformIc { p: 1.0 });
/// let inf = mc_influence(&g, &[0], CascadeModel::Ic, 100, 9);
/// assert_eq!(inf, 5.0);
/// ```
pub fn mc_influence(
    g: &Graph,
    seeds: &[NodeId],
    model: CascadeModel,
    runs: usize,
    seed: u64,
) -> f64 {
    assert!(runs > 0, "mc_influence needs at least one run");
    let mut rng = rng_from_seed(seed);
    let total: u64 = (0..runs)
        .map(|_| match model {
            CascadeModel::Ic => simulate_ic(g, seeds, &mut rng) as u64,
            CascadeModel::Lt => simulate_lt(g, seeds, &mut rng) as u64,
        })
        .sum();
    total as f64 / runs as f64
}

/// RR-set-based estimate of `𝕀(S)` (paper Lemma 1): generates `count`
/// random RR sets under `strategy` and returns `n · Λ(S)/count`.
///
/// Complements [`mc_influence`]: orders of magnitude cheaper for small
/// `𝕀(S)` on large graphs, since each RR set costs `O(m/n · 𝕀(v*))`
/// instead of a full forward cascade.
///
/// ```
/// use subsim_diffusion::forward::rr_influence;
/// use subsim_diffusion::RrStrategy;
/// use subsim_graph::{generators, WeightModel};
///
/// let g = generators::path_graph(4, WeightModel::UniformIc { p: 1.0 });
/// // Node 0 reaches everyone on the deterministic chain.
/// let inf = rr_influence(&g, &[0], RrStrategy::SubsimIc, 500, 3);
/// assert_eq!(inf, 4.0);
/// ```
pub fn rr_influence(
    g: &Graph,
    seeds: &[NodeId],
    strategy: crate::rr::RrStrategy,
    count: usize,
    seed: u64,
) -> f64 {
    assert!(count > 0, "rr_influence needs at least one RR set");
    let sampler = crate::rr::RrSampler::new(g, strategy);
    let mut ctx = crate::rr::RrContext::new(g.n());
    // Seeds double as a sentinel: generation may stop the moment it hits
    // one, which leaves the coverage count unchanged and is exactly the
    // trick HIST exploits.
    ctx.set_sentinel(seeds);
    let mut rng = rng_from_seed(seed);
    let mut covered = 0usize;
    for _ in 0..count {
        sampler.generate(&mut ctx, &mut rng);
    }
    covered += ctx.sentinel_hits as usize;
    g.n() as f64 * covered as f64 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{complete_graph, path_graph, star_graph};
    use subsim_graph::{GraphBuilder, WeightModel};

    #[test]
    fn seeds_always_active() {
        let g = path_graph(5, WeightModel::UniformIc { p: 0.0 });
        let mut rng = rng_from_seed(1);
        assert_eq!(simulate_ic(&g, &[0, 2, 4], &mut rng), 3);
        assert_eq!(simulate_ic(&g, &[0, 0, 0], &mut rng), 1);
    }

    #[test]
    fn deterministic_chain_propagates_fully() {
        let g = path_graph(10, WeightModel::UniformIc { p: 1.0 });
        let mut rng = rng_from_seed(2);
        assert_eq!(simulate_ic(&g, &[0], &mut rng), 10);
        assert_eq!(simulate_ic(&g, &[5], &mut rng), 5);
    }

    #[test]
    fn star_influence_matches_closed_form() {
        // Hub with L leaves at probability p: 𝕀({hub}) = 1 + L·p.
        let (leaves, p) = (20usize, 0.3);
        let g = star_graph(leaves + 1, WeightModel::UniformIc { p });
        let est = mc_influence(&g, &[0], CascadeModel::Ic, 40_000, 3);
        let expect = 1.0 + leaves as f64 * p;
        assert!((est - expect).abs() < 0.15, "est {est} vs {expect}");
    }

    #[test]
    fn two_hop_chain_closed_form() {
        // 0 ->(p1) 1 ->(p2) 2: 𝕀({0}) = 1 + p1 + p1·p2.
        let g = GraphBuilder::new(3)
            .add_weighted_edge(0, 1, 0.5)
            .add_weighted_edge(1, 2, 0.4)
            .build()
            .unwrap();
        let est = mc_influence(&g, &[0], CascadeModel::Ic, 60_000, 4);
        let expect = 1.0 + 0.5 + 0.5 * 0.4;
        assert!((est - expect).abs() < 0.02, "est {est} vs {expect}");
    }

    #[test]
    fn lt_single_in_edge_matches_weight() {
        // For a single in-edge of weight w, LT activation prob given the
        // source is active is exactly w (λ ~ U[0,1] <= w).
        let g = GraphBuilder::new(2)
            .add_weighted_edge(0, 1, 0.35)
            .build()
            .unwrap();
        let est = mc_influence(&g, &[0], CascadeModel::Lt, 60_000, 5);
        assert!((est - 1.35).abs() < 0.02, "est {est}");
    }

    #[test]
    fn lt_full_weight_always_activates() {
        let g = path_graph(6, WeightModel::Lt); // single in-edge of weight 1 each
        let mut rng = rng_from_seed(6);
        assert_eq!(simulate_lt(&g, &[0], &mut rng), 6);
    }

    #[test]
    fn lt_monotone_in_seed_set() {
        let g = complete_graph(8, WeightModel::Lt);
        let a = mc_influence(&g, &[0], CascadeModel::Lt, 5_000, 7);
        let b = mc_influence(&g, &[0, 1, 2], CascadeModel::Lt, 5_000, 7);
        assert!(b >= a, "monotonicity violated: {b} < {a}");
    }

    #[test]
    fn influence_bounded_by_n() {
        let g = complete_graph(10, WeightModel::UniformIc { p: 0.9 });
        let est = mc_influence(&g, &[0], CascadeModel::Ic, 2_000, 8);
        assert!((1.0..=10.0).contains(&est));
    }

    #[test]
    fn rr_influence_matches_forward() {
        let g = crate::rr::tests_support_graph();
        let seeds = [0u32, 5];
        let fwd = mc_influence(&g, &seeds, CascadeModel::Ic, 60_000, 31);
        let rr = rr_influence(&g, &seeds, crate::rr::RrStrategy::SubsimIc, 60_000, 32);
        assert!(
            (fwd - rr).abs() < 0.05 * fwd.max(1.0),
            "forward {fwd} vs rr {rr}"
        );
    }

    #[test]
    fn mc_is_deterministic_given_seed() {
        let g = star_graph(30, WeightModel::Wc);
        let a = mc_influence(&g, &[0], CascadeModel::Ic, 1000, 9);
        let b = mc_influence(&g, &[0], CascadeModel::Ic, 1000, 9);
        assert_eq!(a, b);
    }
}
