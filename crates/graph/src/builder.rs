//! Edge-list graph construction.

use crate::csr::{EdgeWeights, Graph, NodeId};
use crate::error::GraphError;
use crate::weights::WeightModel;

/// Builds a [`Graph`] from an edge list.
///
/// ```
/// use subsim_graph::{GraphBuilder, WeightModel};
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 2), (2, 3), (0, 3)])
///     .weights(WeightModel::Wc)
///     .build()
///     .unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    custom_probs: Option<Vec<f64>>,
    model: WeightModel,
    undirected: bool,
    keep_self_loops: bool,
    weight_seed: u64,
}

impl GraphBuilder {
    /// Starts a builder for a graph with nodes `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            custom_probs: None,
            model: WeightModel::Wc,
            undirected: false,
            keep_self_loops: false,
            weight_seed: 0x5eed,
        }
    }

    /// Adds one directed edge `u -> v`.
    pub fn add_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many directed edges.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Adds one edge with an explicit probability; switches the graph to
    /// per-edge weights (overrides [`GraphBuilder::weights`]).
    pub fn add_weighted_edge(mut self, u: NodeId, v: NodeId, p: f64) -> Self {
        let probs = self.custom_probs.get_or_insert_with(Vec::new);
        probs.resize(self.edges.len(), f64::NAN);
        self.edges.push((u, v));
        probs.push(p);
        self
    }

    /// Selects the weight model used to derive edge probabilities.
    pub fn weights(mut self, model: WeightModel) -> Self {
        self.model = model;
        self
    }

    /// Seed for the random weight models (exponential, Weibull,
    /// trivalency). Defaults to a fixed constant so builds are
    /// reproducible.
    pub fn weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// Treats every added edge as undirected: both directions are
    /// materialized (matching how the paper handles Orkut/Friendster).
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// Keeps self-loops instead of dropping them (default: drop).
    pub fn keep_self_loops(mut self, yes: bool) -> Self {
        self.keep_self_loops = yes;
        self
    }

    /// Finalizes the graph: validates endpoints, dedups parallel edges,
    /// builds both CSR directions, and materializes edge probabilities.
    pub fn build(self) -> Result<Graph, GraphError> {
        let GraphBuilder {
            n,
            edges,
            custom_probs,
            model,
            undirected,
            keep_self_loops,
            weight_seed,
        } = self;
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }

        // Resolve custom probabilities: edges added via `add_edge` after a
        // weighted edge get NaN placeholders, which we reject.
        if let Some(probs) = &custom_probs {
            if probs.len() != edges.len() {
                return Err(GraphError::WeightLengthMismatch {
                    expected: edges.len(),
                    got: probs.len(),
                });
            }
            for &p in probs {
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(GraphError::InvalidProbability { value: p });
                }
            }
        }

        // Collect (u, v, optional prob); double for undirected.
        let mut triples: Vec<(NodeId, NodeId, f64)> =
            Vec::with_capacity(edges.len() * if undirected { 2 } else { 1 });
        for (i, &(u, v)) in edges.iter().enumerate() {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u as u64, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v as u64, n });
            }
            if u == v && !keep_self_loops {
                continue;
            }
            let p = custom_probs.as_ref().map_or(f64::NAN, |ps| ps[i]);
            triples.push((u, v, p));
            if undirected && u != v {
                triples.push((v, u, p));
            }
        }

        // Dedup parallel edges, keeping the first occurrence.
        triples.sort_by_key(|&(u, v, _)| (u, v));
        triples.dedup_by_key(|&mut (u, v, _)| (u, v));
        let m = triples.len();

        // Forward CSR (already sorted by source).
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &triples {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = triples.iter().map(|&(_, v, _)| v).collect();

        // Reverse CSR via counting sort on target.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &triples {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_probs = vec![0.0f64; m];
        for &(u, v, p) in &triples {
            let slot = cursor[v as usize];
            in_sources[slot] = u;
            in_probs[slot] = p;
            cursor[v as usize] += 1;
        }

        let weights = if custom_probs.is_some() {
            sort_in_segments(&in_offsets, &mut in_sources, &mut in_probs);
            EdgeWeights::PerEdge(in_probs)
        } else {
            model.assign(n, &in_offsets, &mut in_sources, weight_seed)
        };

        let g = Graph::from_parts(n, out_offsets, out_targets, in_offsets, in_sources, weights);
        g.validate()?;
        Ok(g)
    }
}

/// Sorts each in-segment by descending probability, keeping sources
/// aligned (precondition of the index-free general-IC sampler).
fn sort_in_segments(in_offsets: &[usize], in_sources: &mut [NodeId], probs: &mut [f64]) {
    for v in 0..in_offsets.len() - 1 {
        let (lo, hi) = (in_offsets[v], in_offsets[v + 1]);
        if hi - lo < 2 {
            continue;
        }
        let mut zipped: Vec<(f64, NodeId)> = probs[lo..hi]
            .iter()
            .copied()
            .zip(in_sources[lo..hi].iter().copied())
            .collect();
        zipped.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (i, (p, s)) in zipped.into_iter().enumerate() {
            probs[lo + i] = p;
            in_sources[lo + i] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::InProbs;

    #[test]
    fn rejects_out_of_range_nodes() {
        let err = GraphBuilder::new(2).add_edge(0, 5).build().unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            GraphBuilder::new(0).build().unwrap_err(),
            GraphError::EmptyGraph
        ));
    }

    #[test]
    fn drops_self_loops_by_default() {
        let g = GraphBuilder::new(2)
            .edges([(0, 0), (0, 1)])
            .build()
            .unwrap();
        assert_eq!(g.m(), 1);
        let g = GraphBuilder::new(2)
            .edges([(0, 0), (0, 1)])
            .keep_self_loops(true)
            .build()
            .unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = GraphBuilder::new(2)
            .edges([(0, 1), (0, 1), (0, 1)])
            .build()
            .unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 2)])
            .undirected(true)
            .build()
            .unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(2), 1);
    }

    #[test]
    fn custom_weights_respected() {
        let g = GraphBuilder::new(3)
            .add_weighted_edge(0, 2, 0.25)
            .add_weighted_edge(1, 2, 0.75)
            .build()
            .unwrap();
        let InProbs::PerEdge(ps) = g.in_probs(2) else {
            panic!()
        };
        assert_eq!(ps, &[0.75, 0.25]); // sorted descending
        assert_eq!(g.in_neighbors(2), &[1, 0]); // aligned with probs
    }

    #[test]
    fn custom_weights_validate_range() {
        let err = GraphBuilder::new(2)
            .add_weighted_edge(0, 1, 1.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability { .. }));
    }

    #[test]
    fn mixing_weighted_and_unweighted_edges_fails() {
        let err = GraphBuilder::new(3)
            .add_weighted_edge(0, 1, 0.5)
            .add_edge(1, 2)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::WeightLengthMismatch { .. }));
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(10).add_edge(0, 1).build().unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.in_degree(9), 0);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn out_neighbors_sorted_by_construction() {
        let g = GraphBuilder::new(4)
            .edges([(0, 3), (0, 1), (0, 2)])
            .build()
            .unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }
}
