//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building, loading, or validating a graph.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The graph's node count.
        n: usize,
    },
    /// The graph has zero nodes; every algorithm needs at least one.
    EmptyGraph,
    /// A propagation probability is outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A caller-supplied per-edge weight vector has the wrong length.
    WeightLengthMismatch {
        /// Expected number of edges.
        expected: usize,
        /// Provided number of weights.
        got: usize,
    },
    /// Underlying I/O failure while reading or writing an edge list.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::InvalidProbability { value } => {
                write!(f, "propagation probability {value} is not in [0, 1]")
            }
            GraphError::WeightLengthMismatch { expected, got } => {
                write!(f, "expected {expected} edge weights, got {got}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 5 };
        assert!(e.to_string().contains('7') && e.to_string().contains('5'));
        assert!(GraphError::EmptyGraph.to_string().contains("at least one"));
        let e = GraphError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = GraphError::WeightLengthMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("12") && e.to_string().contains("bad token"));
    }

    #[test]
    fn io_error_chains_source() {
        use std::error::Error;
        let e: GraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.source().is_some());
    }
}
