//! Compressed-sparse-row graph storage with forward and reverse adjacency.

use crate::error::GraphError;

/// Node identifier. `u32` keeps adjacency arrays compact (the paper's
/// largest graph has 65.6M nodes, comfortably within range).
pub type NodeId = u32;

/// Propagation probabilities of a node's incoming edges.
///
/// RR-set generators branch on this: the `Uniform` arm enables the plain
/// geometric-skip sampler (paper Algorithm 3); the `PerEdge` arm carries
/// probabilities sorted in *descending* order per node, as required by the
/// index-free general-IC sampler (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InProbs<'a> {
    /// Every in-edge of the node has this probability.
    Uniform(f64),
    /// One probability per in-edge, aligned with
    /// [`Graph::in_neighbors`] and sorted descending.
    PerEdge(&'a [f64]),
}

/// Edge-probability storage shared by the whole graph.
#[derive(Debug, Clone)]
pub(crate) enum EdgeWeights {
    /// `per_node[v]` applies to every in-edge of `v` (WC, WC-variant,
    /// Uniform IC).
    Uniform(Vec<f64>),
    /// Aligned with the reverse CSR's `in_sources`; each node's segment is
    /// sorted descending (general IC, LT).
    PerEdge(Vec<f64>),
}

/// A directed graph with propagation probabilities, stored as twin CSR
/// structures (forward for cascade simulation and out-degree tie-breaks,
/// reverse for RR-set generation).
///
/// Construct via [`crate::builder::GraphBuilder`] or the
/// [`crate::generators`] module.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    weights: EdgeWeights,
}

impl Graph {
    /// Assembles a graph from prebuilt CSR arrays. Internal: the builder
    /// validates invariants before calling this.
    pub(crate) fn from_parts(
        n: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        weights: EdgeWeights,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), *out_offsets.last().unwrap());
        debug_assert_eq!(in_sources.len(), *in_offsets.last().unwrap());
        Graph {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            weights,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Out-neighbors of `v` (targets of edges leaving `v`).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v` (sources of edges entering `v`). When the graph
    /// carries per-edge probabilities, the order matches
    /// [`Graph::in_probs`]'s descending-probability order.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// The raw reverse-CSR offset array: `n + 1` entries, with node `v`'s
    /// in-neighbors at `in_csr_sources()[offsets[v]..offsets[v + 1]]`.
    ///
    /// Flat traversal kernels index these arrays directly instead of going
    /// through [`Graph::in_neighbors`] per node.
    #[inline]
    pub fn in_csr_offsets(&self) -> &[usize] {
        &self.in_offsets
    }

    /// The raw reverse-CSR source array (see [`Graph::in_csr_offsets`]).
    #[inline]
    pub fn in_csr_sources(&self) -> &[NodeId] {
        &self.in_sources
    }

    /// The per-node uniform in-probability array (`probs[v]` applies to
    /// every in-edge of `v`), or `None` when the graph carries per-edge
    /// weights.
    #[inline]
    pub fn uniform_in_probs(&self) -> Option<&[f64]> {
        match &self.weights {
            EdgeWeights::Uniform(per_node) => Some(per_node),
            EdgeWeights::PerEdge(_) => None,
        }
    }

    /// The per-edge in-probability array aligned with
    /// [`Graph::in_csr_sources`] (each node's segment sorted descending),
    /// or `None` when weights are per-node uniform.
    #[inline]
    pub fn per_edge_in_probs(&self) -> Option<&[f64]> {
        match &self.weights {
            EdgeWeights::Uniform(_) => None,
            EdgeWeights::PerEdge(probs) => Some(probs),
        }
    }

    /// Propagation probabilities of `v`'s incoming edges.
    #[inline]
    pub fn in_probs(&self, v: NodeId) -> InProbs<'_> {
        match &self.weights {
            EdgeWeights::Uniform(per_node) => InProbs::Uniform(per_node[v as usize]),
            EdgeWeights::PerEdge(probs) => {
                let v = v as usize;
                InProbs::PerEdge(&probs[self.in_offsets[v]..self.in_offsets[v + 1]])
            }
        }
    }

    /// `Σ_{(u,v) ∈ E} p(u, v)` — the total incoming weight of `v`, the `μ`
    /// of the subset-sampling cost bound (paper Lemma 3).
    pub fn in_prob_sum(&self, v: NodeId) -> f64 {
        match self.in_probs(v) {
            InProbs::Uniform(p) => p * self.in_degree(v) as f64,
            InProbs::PerEdge(ps) => ps.iter().sum(),
        }
    }

    /// Whether every node's in-edges share one probability (WC / Uniform
    /// IC / WC-variant), enabling the fast path of Algorithm 3.
    pub fn has_uniform_in_probs(&self) -> bool {
        matches!(self.weights, EdgeWeights::Uniform(_))
    }

    /// The probability of the `idx`-th in-edge of `v` (panics if out of
    /// range). Convenience for tests and the vanilla generator.
    pub fn in_prob_at(&self, v: NodeId, idx: usize) -> f64 {
        match self.in_probs(v) {
            InProbs::Uniform(p) => {
                assert!(idx < self.in_degree(v));
                p
            }
            InProbs::PerEdge(ps) => ps[idx],
        }
    }

    /// Probability of the edge `u -> v`, or `None` if absent.
    ///
    /// `O(1)` for per-node-uniform weights; `O(d_in(v))` scan otherwise
    /// (the in-list is sorted by probability, not source id). Forward
    /// simulation is the only caller on the per-edge path.
    pub fn prob_of_edge(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let nbrs = self.in_neighbors(v);
        match self.in_probs(v) {
            InProbs::Uniform(p) => nbrs.contains(&u).then_some(p),
            InProbs::PerEdge(ps) => nbrs.iter().position(|&x| x == u).map(|i| ps[i]),
        }
    }

    /// Iterates all edges as `(source, target, probability)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n as NodeId).flat_map(move |v| {
            let nbrs = self.in_neighbors(v);
            (0..nbrs.len()).map(move |i| (nbrs[i], v, self.in_prob_at(v, i)))
        })
    }

    /// Validates that every probability lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let check = |p: f64| {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                Err(GraphError::InvalidProbability { value: p })
            } else {
                Ok(())
            }
        };
        match &self.weights {
            EdgeWeights::Uniform(per_node) => {
                for (v, &p) in per_node.iter().enumerate() {
                    if self.in_degree(v as NodeId) > 0 {
                        check(p)?;
                    }
                }
            }
            EdgeWeights::PerEdge(probs) => {
                for &p in probs {
                    check(p)?;
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes (adjacency + weights).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let w = match &self.weights {
            EdgeWeights::Uniform(v) => v.len() * size_of::<f64>(),
            EdgeWeights::PerEdge(v) => v.len() * size_of::<f64>(),
        };
        (self.out_offsets.len() + self.in_offsets.len()) * size_of::<usize>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<NodeId>()
            + w
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::csr::InProbs;
    use crate::weights::WeightModel;

    /// 0 -> 1 -> 2, 0 -> 2.
    fn triangle() -> crate::Graph {
        GraphBuilder::new(3)
            .edges([(0, 1), (1, 2), (0, 2)])
            .weights(WeightModel::Wc)
            .build()
            .unwrap()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_degree(0), 0);
        let mut out0 = g.out_neighbors(0).to_vec();
        out0.sort_unstable();
        assert_eq!(out0, vec![1, 2]);
        let mut in2 = g.in_neighbors(2).to_vec();
        in2.sort_unstable();
        assert_eq!(in2, vec![0, 1]);
    }

    #[test]
    fn wc_probabilities() {
        let g = triangle();
        assert_eq!(g.in_probs(1), InProbs::Uniform(1.0));
        assert_eq!(g.in_probs(2), InProbs::Uniform(0.5));
        assert!((g.in_prob_sum(2) - 1.0).abs() < 1e-12);
        assert!(g.has_uniform_in_probs());
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = triangle();
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        for (_, _, p) in g.edges() {
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        triangle().validate().unwrap();
    }

    #[test]
    fn memory_accounting_positive() {
        assert!(triangle().memory_bytes() > 0);
    }
}
