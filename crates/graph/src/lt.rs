//! Linear-Threshold reverse-step support.
//!
//! Under the LT model, a reverse-reachable walk repeatedly moves from a
//! node `v` to **at most one** in-neighbor, chosen with probability
//! `p(u, v)` each (and no neighbor with probability `1 - Σ p`). This
//! matches the live-edge characterization of LT: every node keeps exactly
//! one incoming live edge with those probabilities, and the RR set is the
//! reverse path until a revisit or a dead end.
//!
//! [`LtIndex`] preprocesses one alias table per node so each step costs
//! `O(1)` (the "cost proportional to weight" property the paper relies on
//! for the `O(k·n·log n/ε²)` LT bound); [`sample_in_neighbor_linear`]
//! provides the index-free `O(d_in)` fallback used by tests as an oracle.

use crate::csr::{Graph, InProbs, NodeId};
use rand::Rng;
use subsim_sampling::AliasTable;

/// Per-node alias tables over incoming edge weights.
#[derive(Debug, Clone)]
pub struct LtIndex {
    /// `None` for nodes without incoming weight.
    tables: Vec<Option<AliasTable>>,
    /// `Σ p(u, v)` per node (probability that *some* in-neighbor is chosen).
    sums: Vec<f64>,
}

impl LtIndex {
    /// Builds the index in `O(m)` time and memory.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut tables = Vec::with_capacity(n);
        let mut sums = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            let d = g.in_degree(v);
            if d == 0 {
                tables.push(None);
                sums.push(0.0);
                continue;
            }
            match g.in_probs(v) {
                InProbs::Uniform(p) => {
                    sums.push(p * d as f64);
                    // Uniform weights need no table; sample uniformly.
                    tables.push(None);
                }
                InProbs::PerEdge(ps) => {
                    sums.push(ps.iter().sum());
                    tables.push(AliasTable::new(ps));
                }
            }
        }
        LtIndex { tables, sums }
    }

    /// Total incoming weight of `v` (clamped to `[0, 1]` for the step
    /// probability; the LT model requires it to be `<= 1`).
    pub fn in_weight_sum(&self, v: NodeId) -> f64 {
        self.sums[v as usize]
    }

    /// The alias table `v`'s reverse step draws from, or `None` when the
    /// step samples uniformly (uniform weights) or `v` has no incoming
    /// weight. Exposed so flattened kernels can replicate
    /// [`LtIndex::sample_in_neighbor`] bitwise from structure-of-arrays
    /// copies of exactly these tables.
    pub fn table(&self, v: NodeId) -> Option<&AliasTable> {
        self.tables[v as usize].as_ref()
    }

    /// Samples the reverse LT step from `v`: returns the chosen
    /// in-neighbor, or `None` (probability `1 - Σ p`).
    #[inline]
    pub fn sample_in_neighbor<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
        v: NodeId,
    ) -> Option<NodeId> {
        let d = g.in_degree(v);
        if d == 0 {
            return None;
        }
        let sum = self.sums[v as usize].min(1.0);
        if rng.gen::<f64>() >= sum {
            return None;
        }
        let nbrs = g.in_neighbors(v);
        let idx = match &self.tables[v as usize] {
            Some(table) => table.sample(rng),
            None => rng.gen_range(0..d), // uniform weights
        };
        Some(nbrs[idx])
    }
}

/// Index-free reverse LT step by linear prefix-sum scan; `O(d_in)`.
pub fn sample_in_neighbor_linear<R: Rng + ?Sized>(
    g: &Graph,
    rng: &mut R,
    v: NodeId,
) -> Option<NodeId> {
    let d = g.in_degree(v);
    if d == 0 {
        return None;
    }
    let u: f64 = rng.gen();
    let nbrs = g.in_neighbors(v);
    match g.in_probs(v) {
        InProbs::Uniform(p) => {
            let idx = (u / p) as usize;
            (u < p * d as f64).then(|| nbrs[idx.min(d - 1)])
        }
        InProbs::PerEdge(ps) => {
            let mut acc = 0.0;
            for (i, &p) in ps.iter().enumerate() {
                acc += p;
                if u < acc {
                    return Some(nbrs[i]);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::weights::WeightModel;
    use subsim_sampling::rng_from_seed;

    fn fan_in() -> Graph {
        // 4 nodes point at node 0 with skewed custom weights summing to 0.8.
        GraphBuilder::new(5)
            .add_weighted_edge(1, 0, 0.4)
            .add_weighted_edge(2, 0, 0.2)
            .add_weighted_edge(3, 0, 0.15)
            .add_weighted_edge(4, 0, 0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn step_frequencies_match_weights() {
        let g = fan_in();
        let idx = LtIndex::new(&g);
        let mut rng = rng_from_seed(41);
        let n = 300_000;
        let mut counts = std::collections::HashMap::new();
        let mut none = 0usize;
        for _ in 0..n {
            match idx.sample_in_neighbor(&g, &mut rng, 0) {
                Some(u) => *counts.entry(u).or_insert(0usize) += 1,
                None => none += 1,
            }
        }
        assert!((none as f64 / n as f64 - 0.2).abs() < 0.01);
        let expect = [(1u32, 0.4), (2, 0.2), (3, 0.15), (4, 0.05)];
        for (node, p) in expect {
            let got = *counts.get(&node).unwrap_or(&0) as f64 / n as f64;
            assert!((got - p).abs() < 0.01, "node {node}: {got} vs {p}");
        }
    }

    #[test]
    fn linear_oracle_agrees_with_index() {
        let g = fan_in();
        let idx = LtIndex::new(&g);
        let n = 200_000;
        let mut a = [0f64; 6];
        let mut b = [0f64; 6];
        let mut r1 = rng_from_seed(42);
        let mut r2 = rng_from_seed(43);
        for _ in 0..n {
            let slot = idx
                .sample_in_neighbor(&g, &mut r1, 0)
                .map_or(5, |u| u as usize);
            a[slot] += 1.0 / n as f64;
            let slot = sample_in_neighbor_linear(&g, &mut r2, 0).map_or(5, |u| u as usize);
            b[slot] += 1.0 / n as f64;
        }
        for i in 0..6 {
            assert!((a[i] - b[i]).abs() < 0.01, "slot {i}: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn uniform_weights_skip_alias_tables() {
        let g = GraphBuilder::new(4)
            .edges([(1, 0), (2, 0), (3, 0)])
            .weights(WeightModel::Lt)
            .build()
            .unwrap();
        let idx = LtIndex::new(&g);
        assert!((idx.in_weight_sum(0) - 1.0).abs() < 1e-12);
        let mut rng = rng_from_seed(44);
        let mut counts = [0usize; 4];
        for _ in 0..120_000 {
            let u = idx.sample_in_neighbor(&g, &mut rng, 0).unwrap();
            counts[u as usize] += 1;
        }
        for &c in &counts[1..] {
            assert!((c as f64 / 120_000.0 - 1.0 / 3.0).abs() < 0.01);
        }
    }

    #[test]
    fn no_in_edges_returns_none() {
        let g = GraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let idx = LtIndex::new(&g);
        let mut rng = rng_from_seed(45);
        assert_eq!(idx.sample_in_neighbor(&g, &mut rng, 0), None);
        assert_eq!(sample_in_neighbor_linear(&g, &mut rng, 0), None);
    }
}
