//! Directed-graph substrate for influence maximization.
//!
//! The SUBSIM paper operates on social networks `G = (V, E)` where each
//! directed edge `(u, v)` carries a propagation probability `p(u, v)`.
//! This crate provides everything the algorithms need from the graph side:
//!
//! - [`csr::Graph`] — compressed sparse row storage with both forward
//!   (out-neighbor) and reverse (in-neighbor) adjacency; reverse traversal
//!   is the backbone of RR-set generation.
//! - [`weights`] — the paper's weight models: WC (`1/d_in`), the WC variant
//!   (`min(1, θ/d_in)`) used for the high-influence experiments, Uniform IC
//!   (constant `p`), exponential and Weibull skewed distributions
//!   (Section 7 parameter settings), trivalency, and LT normalization.
//! - [`builder::GraphBuilder`] — edge-list ingestion with deduplication,
//!   self-loop removal, and optional undirected doubling.
//! - [`generators`] — synthetic networks (Barabási–Albert, Erdős–Rényi,
//!   R-MAT, Watts–Strogatz, and small fixtures) used to stand in for the
//!   paper's SNAP/KONECT datasets at laptop scale (see `DESIGN.md` §3).
//! - [`io`] — whitespace-separated edge-list text I/O.
//! - [`lt`] — per-node alias tables for O(1) Linear-Threshold reverse
//!   steps.
//! - [`stats`] — degree and weight summaries (Table 2 reproduction).
//! - [`components`] / [`transform`] — connectivity analysis and the
//!   preprocessing transforms (transpose, induced subgraph, largest WCC)
//!   IM pipelines apply before seeding.

#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod generators;
pub mod io;
pub mod lt;
pub mod stats;
pub mod transform;
pub mod weights;

pub use builder::GraphBuilder;
pub use components::{strongly_connected_components, weakly_connected_components, Components};
pub use csr::{Graph, InProbs, NodeId};
pub use error::GraphError;
pub use lt::LtIndex;
pub use stats::GraphStats;
pub use transform::{induced_subgraph, largest_wcc, transpose};
pub use weights::WeightModel;

/// Commonly used items.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::csr::{Graph, NodeId};
    pub use crate::error::GraphError;
    pub use crate::generators;
    pub use crate::stats::GraphStats;
    pub use crate::weights::WeightModel;
}
