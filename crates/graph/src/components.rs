//! Connectivity analysis: weakly and strongly connected components.
//!
//! IM preprocessing routinely restricts to the largest weakly connected
//! component (isolated islands cannot be influenced from outside), and the
//! SCC structure explains influence plateaus: within a strongly connected
//! component under high propagation probabilities, every node reaches
//! every other, which is exactly the regime where HIST's sentinel
//! truncation pays off.

use crate::csr::{Graph, NodeId};

/// A labeling of nodes into components.
#[derive(Debug, Clone)]
pub struct Components {
    /// `label[v]` is the component id of `v`, in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Id and size of the largest component.
    pub fn largest(&self) -> (u32, usize) {
        let sizes = self.sizes();
        let (id, &size) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .expect("at least one component");
        (id as u32, size)
    }
}

/// Weakly connected components (edge direction ignored), by BFS. `O(n + m)`.
pub fn weakly_connected_components(g: &Graph) -> Components {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = count;
                    queue.push(w);
                }
            }
        }
        count += 1;
    }
    Components {
        label,
        count: count as usize,
    }
}

/// Strongly connected components by Tarjan's algorithm, iterative to
/// survive deep graphs. `O(n + m)`.
pub fn strongly_connected_components(g: &Graph) -> Components {
    let n = g.n();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery order
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut label = vec![UNSET; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frame: (node, next out-neighbor offset).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            let nbrs = g.out_neighbors(v);
            if *i < nbrs.len() {
                let w = nbrs[*i];
                *i += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        label[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    Components {
        label,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{cycle_graph, path_graph};
    use crate::weights::WeightModel;

    #[test]
    fn path_is_one_wcc_n_sccs() {
        let g = path_graph(5, WeightModel::Wc);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 1);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 5);
    }

    #[test]
    fn cycle_is_one_scc() {
        let g = cycle_graph(6, WeightModel::Wc);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 1);
        assert_eq!(scc.largest().1, 6);
    }

    #[test]
    fn two_islands() {
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (3, 4), (4, 5)])
            .build()
            .unwrap();
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 2);
        assert_eq!(wcc.label[0], wcc.label[2]);
        assert_ne!(wcc.label[0], wcc.label[3]);
        assert_eq!(wcc.sizes(), vec![3, 3]);
    }

    #[test]
    fn scc_with_back_edge() {
        // 0 -> 1 -> 2 -> 0 forms an SCC; 2 -> 3 dangles.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.label[0], scc.label[1]);
        assert_eq!(scc.label[1], scc.label[2]);
        assert_ne!(scc.label[3], scc.label[0]);
        assert_eq!(scc.largest().1, 3);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = GraphBuilder::new(4).add_edge(0, 1).build().unwrap();
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 3);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 4);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // Iterative Tarjan must handle a 200k-node chain.
        let g = path_graph(200_000, WeightModel::Wc);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 200_000);
    }

    #[test]
    fn labels_cover_all_nodes() {
        let g = crate::generators::rmat(8, 1000, WeightModel::Wc, 7);
        for comps in [
            weakly_connected_components(&g),
            strongly_connected_components(&g),
        ] {
            assert_eq!(comps.label.len(), g.n());
            assert!(comps.label.iter().all(|&l| (l as usize) < comps.count));
            assert_eq!(comps.sizes().iter().sum::<usize>(), g.n());
        }
    }
}
