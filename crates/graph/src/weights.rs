//! Propagation-probability models (paper Section 7, "Parameter Settings").

use crate::csr::{EdgeWeights, NodeId};
use rand::Rng;
use subsim_sampling::rng_from_seed;

/// How to assign the propagation probability `p(u, v)` of each edge.
///
/// The first three variants produce *per-node-uniform* probabilities (every
/// in-edge of a node shares one value), which enables the plain
/// geometric-skip RR generator (paper Algorithm 3). The remaining variants
/// produce skewed per-edge probabilities handled by the general-IC
/// samplers (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// Weighted-cascade: `p(u, v) = 1 / d_in(v)`. The paper's default.
    Wc,
    /// The high-influence "WC variant": `p(u, v) = min(1, θ / d_in(v))`.
    /// Increasing `θ` grows the average RR-set size (Figures 4–6).
    WcVariant {
        /// The boost factor `θ >= 1`.
        theta: f64,
    },
    /// Uniform IC: every edge has the same probability `p` (Figure 7).
    UniformIc {
        /// The shared probability.
        p: f64,
    },
    /// Per-edge weights drawn from `Exponential(λ)` and then scaled so
    /// each node's incoming weights sum to 1 (paper Section 7).
    Exponential {
        /// Rate parameter; the paper uses `λ = 1`.
        lambda: f64,
    },
    /// Per-edge weights drawn from `Weibull(a, b)` with `a, b ~ U(0, 10]`
    /// resampled per edge, then scaled so each node's incoming weights sum
    /// to 1 (paper Section 7, following Tang et al. \[38\]).
    Weibull,
    /// Trivalency: each edge uniformly gets one of `{0.1, 0.01, 0.001}`.
    /// A classic IC benchmark setting; included for completeness.
    Trivalency,
    /// Logarithmic incoming mass: `p(u, v) = min(1, ln(1 + d_in(v)) / d_in(v))`,
    /// so each node's incoming weights sum to `Θ(log d_in)` — the paper's
    /// Theorem 1 "Case 2", where SUBSIM still wins a factor
    /// `(m/n)/log(m/n)` over vanilla generation.
    LogDegree,
    /// Linear-Threshold edge weights: `p(u, v) = 1 / d_in(v)`, which makes
    /// each node's incoming weights sum to exactly 1 as the LT model
    /// requires. Numerically identical to [`WeightModel::Wc`]; kept
    /// separate to document intent.
    Lt,
}

impl WeightModel {
    /// Whether the model yields one probability per node (fast path).
    pub fn is_per_node_uniform(&self) -> bool {
        matches!(
            self,
            WeightModel::Wc
                | WeightModel::WcVariant { .. }
                | WeightModel::UniformIc { .. }
                | WeightModel::LogDegree
                | WeightModel::Lt
        )
    }

    /// Materializes edge weights for a graph given by its reverse CSR.
    ///
    /// `in_sources` segments may be reordered (sorted by descending
    /// probability) for per-edge models; the caller passes a mutable
    /// reference so neighbor order and probabilities stay aligned.
    pub(crate) fn assign(
        &self,
        n: usize,
        in_offsets: &[usize],
        in_sources: &mut [NodeId],
        seed: u64,
    ) -> EdgeWeights {
        match *self {
            WeightModel::Wc | WeightModel::Lt => EdgeWeights::Uniform(
                (0..n)
                    .map(|v| {
                        let d = in_offsets[v + 1] - in_offsets[v];
                        if d == 0 {
                            0.0
                        } else {
                            1.0 / d as f64
                        }
                    })
                    .collect(),
            ),
            WeightModel::WcVariant { theta } => EdgeWeights::Uniform(
                (0..n)
                    .map(|v| {
                        let d = in_offsets[v + 1] - in_offsets[v];
                        if d == 0 {
                            0.0
                        } else {
                            (theta / d as f64).min(1.0)
                        }
                    })
                    .collect(),
            ),
            WeightModel::UniformIc { p } => EdgeWeights::Uniform(vec![p; n]),
            WeightModel::LogDegree => EdgeWeights::Uniform(
                (0..n)
                    .map(|v| {
                        let d = in_offsets[v + 1] - in_offsets[v];
                        if d == 0 {
                            0.0
                        } else {
                            ((1.0 + d as f64).ln() / d as f64).min(1.0)
                        }
                    })
                    .collect(),
            ),
            WeightModel::Exponential { lambda } => {
                per_edge_normalized(n, in_offsets, in_sources, seed, |rng| {
                    sample_exponential(rng, lambda)
                })
            }
            WeightModel::Weibull => {
                per_edge_normalized(n, in_offsets, in_sources, seed, sample_weibull_u10)
            }
            WeightModel::Trivalency => {
                let mut rng = rng_from_seed(seed);
                let mut probs: Vec<f64> = (0..in_sources.len())
                    .map(|_| [0.1, 0.01, 0.001][rng.gen_range(0..3usize)])
                    .collect();
                sort_segments_desc(in_offsets, in_sources, &mut probs);
                EdgeWeights::PerEdge(probs)
            }
        }
    }
}

/// Draws `Exponential(λ)` via inverse CDF.
fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    let u = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / lambda
}

/// Draws `Weibull(a, b)` with `a, b ~ U(0, 10]` resampled per call.
fn sample_weibull_u10<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let a = rng.gen::<f64>() * 10.0 + f64::MIN_POSITIVE;
    let b = rng.gen::<f64>() * 10.0 + f64::MIN_POSITIVE;
    let u = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    b * (-u.ln()).powf(1.0 / a)
}

/// Draws one raw weight per in-edge, scales each node's incoming weights to
/// sum to 1, and sorts each segment descending.
fn per_edge_normalized<F>(
    n: usize,
    in_offsets: &[usize],
    in_sources: &mut [NodeId],
    seed: u64,
    mut draw: F,
) -> EdgeWeights
where
    F: FnMut(&mut rand::rngs::SmallRng) -> f64,
{
    let mut rng = rng_from_seed(seed);
    // Clamp raw draws: a Weibull shape parameter near zero yields an
    // astronomically heavy tail whose draws overflow to infinity, which
    // would poison the per-node normalization with NaNs.
    let mut probs: Vec<f64> = (0..in_sources.len())
        .map(|_| {
            let w = draw(&mut rng);
            if w.is_finite() {
                w.min(1e12)
            } else {
                1e12
            }
        })
        .collect();
    for v in 0..n {
        let (lo, hi) = (in_offsets[v], in_offsets[v + 1]);
        if lo == hi {
            continue;
        }
        let sum: f64 = probs[lo..hi].iter().sum();
        if sum > 0.0 {
            for p in &mut probs[lo..hi] {
                *p /= sum;
            }
        } else {
            // Degenerate draw (all zeros): fall back to uniform.
            let d = (hi - lo) as f64;
            probs[lo..hi].fill(1.0 / d);
        }
    }
    sort_segments_desc(in_offsets, in_sources, &mut probs);
    EdgeWeights::PerEdge(probs)
}

/// Sorts each node's in-edge segment by descending probability, keeping
/// `in_sources` aligned — the precondition of the index-free sampler.
fn sort_segments_desc(in_offsets: &[usize], in_sources: &mut [NodeId], probs: &mut [f64]) {
    for v in 0..in_offsets.len() - 1 {
        let (lo, hi) = (in_offsets[v], in_offsets[v + 1]);
        if hi - lo < 2 {
            continue;
        }
        let mut order: Vec<usize> = (0..hi - lo).collect();
        order.sort_by(|&a, &b| probs[lo + b].total_cmp(&probs[lo + a]));
        let src: Vec<NodeId> = order.iter().map(|&i| in_sources[lo + i]).collect();
        let pr: Vec<f64> = order.iter().map(|&i| probs[lo + i]).collect();
        in_sources[lo..hi].copy_from_slice(&src);
        probs[lo..hi].copy_from_slice(&pr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::InProbs;

    fn star_into(n_leaves: usize, model: WeightModel) -> crate::Graph {
        // leaves 1..=L all point at node 0
        GraphBuilder::new(n_leaves + 1)
            .edges((1..=n_leaves).map(|u| (u as NodeId, 0)))
            .weights(model)
            .weight_seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn wc_is_one_over_indegree() {
        let g = star_into(4, WeightModel::Wc);
        assert_eq!(g.in_probs(0), InProbs::Uniform(0.25));
    }

    #[test]
    fn wc_variant_boosts_and_caps() {
        let g = star_into(4, WeightModel::WcVariant { theta: 2.0 });
        assert_eq!(g.in_probs(0), InProbs::Uniform(0.5));
        let g = star_into(4, WeightModel::WcVariant { theta: 100.0 });
        assert_eq!(g.in_probs(0), InProbs::Uniform(1.0));
    }

    #[test]
    fn uniform_ic_constant() {
        let g = star_into(4, WeightModel::UniformIc { p: 0.03 });
        assert_eq!(g.in_probs(0), InProbs::Uniform(0.03));
    }

    #[test]
    fn exponential_normalizes_to_one_and_sorts_desc() {
        let g = star_into(8, WeightModel::Exponential { lambda: 1.0 });
        let InProbs::PerEdge(ps) = g.in_probs(0) else {
            panic!("expected per-edge probs");
        };
        let sum: f64 = ps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(
            ps.windows(2).all(|w| w[0] >= w[1]),
            "not descending: {ps:?}"
        );
        assert!(ps.iter().all(|&p| p > 0.0 && p <= 1.0));
    }

    #[test]
    fn weibull_normalizes_to_one() {
        let g = star_into(8, WeightModel::Weibull);
        let InProbs::PerEdge(ps) = g.in_probs(0) else {
            panic!("expected per-edge probs");
        };
        assert!((ps.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(ps.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn trivalency_values_from_palette() {
        let g = star_into(20, WeightModel::Trivalency);
        let InProbs::PerEdge(ps) = g.in_probs(0) else {
            panic!("expected per-edge probs");
        };
        for &p in ps {
            assert!(
                [0.1, 0.01, 0.001].iter().any(|&t| (p - t).abs() < 1e-12),
                "unexpected trivalency value {p}"
            );
        }
    }

    #[test]
    fn log_degree_mass_is_logarithmic() {
        let g = star_into(64, WeightModel::LogDegree);
        let expect = (65f64).ln();
        assert!((g.in_prob_sum(0) - expect).abs() < 1e-9);
        // Single in-edge saturates at 1: ln(2)/1 < 1 so stays below.
        let g = star_into(1, WeightModel::LogDegree);
        assert!((g.in_prob_sum(0) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn lt_weights_sum_to_one() {
        let g = star_into(5, WeightModel::Lt);
        assert!((g.in_prob_sum(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_alignment_preserved_after_sorting() {
        // Node 0 has in-edges from 1..=8; the multiset of in-neighbors must
        // survive the descending-probability reorder.
        let g = star_into(8, WeightModel::Weibull);
        let mut nbrs = g.in_neighbors(0).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn weight_seed_is_deterministic() {
        let a = star_into(8, WeightModel::Weibull);
        let b = star_into(8, WeightModel::Weibull);
        let (InProbs::PerEdge(pa), InProbs::PerEdge(pb)) = (a.in_probs(0), b.in_probs(0)) else {
            panic!()
        };
        assert_eq!(pa, pb);
    }

    #[test]
    fn isolated_node_has_zero_prob_mass() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1)])
            .weights(WeightModel::Wc)
            .build()
            .unwrap();
        assert_eq!(g.in_prob_sum(2), 0.0);
    }
}
