//! Edge-list text I/O.
//!
//! The format matches the SNAP datasets the paper downloads: one
//! whitespace-separated `u v` (or `u v p`) pair per line, `#`-prefixed
//! comment lines ignored. Node ids need not be contiguous; a compaction
//! pass maps them to `0..n`.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;
use crate::weights::WeightModel;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parsed edge list plus the mapping from original ids to compact ids.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Compact node count.
    pub n: usize,
    /// Edges over compact ids.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Optional per-edge probabilities (present iff the file had a third
    /// column on every edge line).
    pub probs: Option<Vec<f64>>,
    /// `original_id[i]` is the id in the input file for compact node `i`.
    pub original_id: Vec<u64>,
}

impl EdgeList {
    /// Builds a graph from the parsed edges under `model` (ignored when
    /// the file carried explicit probabilities).
    pub fn into_graph(self, model: WeightModel) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(self.n).weights(model);
        match self.probs {
            Some(probs) => {
                for (&(u, v), &p) in self.edges.iter().zip(&probs) {
                    b = b.add_weighted_edge(u, v, p);
                }
            }
            None => {
                b = b.edges(self.edges);
            }
        }
        b.build()
    }
}

/// Reads a whitespace-separated edge list from `reader`.
pub fn read_edge_list<R: std::io::Read>(reader: R) -> Result<EdgeList, GraphError> {
    let reader = BufReader::new(reader);
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut original_id: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut probs: Vec<f64> = Vec::new();
    let mut saw_prob = None;

    let intern = |raw: u64, original_id: &mut Vec<u64>, id_map: &mut HashMap<u64, NodeId>| {
        *id_map.entry(raw).or_insert_with(|| {
            original_id.push(raw);
            (original_id.len() - 1) as NodeId
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "source")?;
        let v = parse(it.next(), "target")?;
        let p = it.next();
        match (saw_prob, p) {
            (None, Some(tok)) => {
                saw_prob = Some(true);
                probs.push(parse_prob(tok, lineno + 1)?);
            }
            (None, None) => saw_prob = Some(false),
            (Some(true), Some(tok)) => probs.push(parse_prob(tok, lineno + 1)?),
            (Some(true), None) | (Some(false), Some(_)) => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: "inconsistent column count".into(),
                })
            }
            (Some(false), None) => {}
        }
        let cu = intern(u, &mut original_id, &mut id_map);
        let cv = intern(v, &mut original_id, &mut id_map);
        edges.push((cu, cv));
    }
    Ok(EdgeList {
        n: original_id.len(),
        edges,
        probs: if saw_prob == Some(true) {
            Some(probs)
        } else {
            None
        },
        original_id,
    })
}

fn parse_prob(tok: &str, line: usize) -> Result<f64, GraphError> {
    tok.parse::<f64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad probability: {e}"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `graph` as a `u v p` edge list (compact ids).
pub fn write_edge_list<W: std::io::Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# n={} m={}", graph.n(), graph.m())?;
    for (u, v, p) in graph.edges() {
        writeln!(w, "{u} {v} {p}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::InProbs;

    #[test]
    fn parses_comments_and_blank_lines() {
        let input = "# header\n\n0 1\n1 2\n% konect style\n2 0\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.edges.len(), 3);
        assert!(el.probs.is_none());
    }

    #[test]
    fn compacts_sparse_ids() {
        let input = "1000 42\n42 7\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.original_id, vec![1000, 42, 7]);
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn parses_probabilities() {
        let input = "0 1 0.5\n1 2 0.25\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.probs.as_deref(), Some(&[0.5, 0.25][..]));
        let g = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!(g.in_probs(1), InProbs::PerEdge(&[0.5]));
    }

    #[test]
    fn rejects_inconsistent_columns() {
        let input = "0 1 0.5\n1 2\n";
        assert!(matches!(
            read_edge_list(input.as_bytes()).unwrap_err(),
            GraphError::Parse { line: 2, .. }
        ));
    }

    #[test]
    fn rejects_garbage() {
        let input = "0 x\n";
        assert!(matches!(
            read_edge_list(input.as_bytes()).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        let input = "0\n";
        assert!(read_edge_list(input.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = crate::generators::erdos_renyi_gnm(30, 80, WeightModel::Wc, 11);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let el = read_edge_list(buf.as_slice()).unwrap();
        let g2 = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!(g2.m(), g.m());
        // Edge multiset matches (ids may be renumbered by first-seen order,
        // but the writer emits compact ids, and first-seen preserves them
        // only if node 0 appears first; compare via sorted degree lists).
        let mut da: Vec<usize> = (0..g.n() as NodeId).map(|v| g.in_degree(v)).collect();
        let mut db: Vec<usize> = (0..g2.n() as NodeId).map(|v| g2.in_degree(v)).collect();
        da.sort_unstable();
        db.sort_unstable();
        // g2 drops isolated nodes (never mentioned in the file).
        da.retain(|&d| d > 0);
        assert!(db.len() <= da.len() + g.n());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("subsim_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = crate::generators::cycle_graph(6, WeightModel::Wc);
        write_edge_list(&g, std::fs::File::create(&path).unwrap()).unwrap();
        let el = read_edge_list_file(&path).unwrap();
        assert_eq!(el.edges.len(), 6);
        std::fs::remove_file(&path).ok();
    }
}
