//! Edge-list text I/O.
//!
//! The format matches the SNAP datasets the paper downloads: one
//! whitespace-separated `u v` (or `u v p`) pair per line, `#`-prefixed
//! comment lines ignored. Node ids need not be contiguous; a compaction
//! pass maps them to `0..n`.
//!
//! Files written by [`write_edge_list`] carry a `# n=<N> m=<M>` header.
//! When the reader sees that header before any edge, it switches to
//! identity-id mode: the node count is fixed to `N`, ids are taken
//! verbatim (and must be `< N`), and isolated nodes survive the round
//! trip. Without the header the legacy first-seen compaction applies.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;
use crate::weights::WeightModel;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parsed edge list plus the mapping from original ids to compact ids.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Compact node count.
    pub n: usize,
    /// Edges over compact ids.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Optional per-edge probabilities (present iff the file had a third
    /// column on every edge line).
    pub probs: Option<Vec<f64>>,
    /// `original_id[i]` is the id in the input file for compact node `i`.
    pub original_id: Vec<u64>,
}

impl EdgeList {
    /// Builds a graph from the parsed edges under `model` (ignored when
    /// the file carried explicit probabilities).
    pub fn into_graph(self, model: WeightModel) -> Result<Graph, GraphError> {
        // Self-loops present in the file are part of the graph being
        // round-tripped (delta compaction must not silently drop them).
        let mut b = GraphBuilder::new(self.n)
            .weights(model)
            .keep_self_loops(true);
        match self.probs {
            Some(probs) => {
                for (&(u, v), &p) in self.edges.iter().zip(&probs) {
                    b = b.add_weighted_edge(u, v, p);
                }
            }
            None => {
                b = b.edges(self.edges);
            }
        }
        b.build()
    }
}

/// Parses the writer's `# n=<N> m=<M>` header; `None` for any other
/// comment line.
fn parse_size_header(line: &str) -> Option<usize> {
    let rest = line.strip_prefix('#')?.trim();
    let mut it = rest.split_whitespace();
    let n = it.next()?.strip_prefix("n=")?.parse::<usize>().ok()?;
    it.next()?.strip_prefix("m=")?.parse::<u64>().ok()?;
    Some(n)
}

/// Reads a whitespace-separated edge list from `reader`.
pub fn read_edge_list<R: std::io::Read>(reader: R) -> Result<EdgeList, GraphError> {
    let reader = BufReader::new(reader);
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut original_id: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut probs: Vec<f64> = Vec::new();
    let mut saw_prob = None;
    let mut declared_n: Option<usize> = None;

    let intern = |raw: u64, original_id: &mut Vec<u64>, id_map: &mut HashMap<u64, NodeId>| {
        *id_map.entry(raw).or_insert_with(|| {
            original_id.push(raw);
            (original_id.len() - 1) as NodeId
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            if edges.is_empty() && declared_n.is_none() {
                declared_n = parse_size_header(line);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "source")?;
        let v = parse(it.next(), "target")?;
        let p = it.next();
        match (saw_prob, p) {
            (None, Some(tok)) => {
                saw_prob = Some(true);
                probs.push(parse_prob(tok, lineno + 1)?);
            }
            (None, None) => saw_prob = Some(false),
            (Some(true), Some(tok)) => probs.push(parse_prob(tok, lineno + 1)?),
            (Some(true), None) | (Some(false), Some(_)) => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: "inconsistent column count".into(),
                })
            }
            (Some(false), None) => {}
        }
        let (cu, cv) = match declared_n {
            // Identity-id mode: ids are already compact; range-check only.
            Some(n) => {
                for raw in [u, v] {
                    if raw >= n as u64 {
                        return Err(GraphError::Parse {
                            line: lineno + 1,
                            message: format!("node id {raw} exceeds declared n={n}"),
                        });
                    }
                }
                (u as NodeId, v as NodeId)
            }
            None => (
                intern(u, &mut original_id, &mut id_map),
                intern(v, &mut original_id, &mut id_map),
            ),
        };
        edges.push((cu, cv));
    }
    let (n, original_id) = match declared_n {
        Some(n) => (n, (0..n as u64).collect()),
        None => (original_id.len(), original_id),
    };
    Ok(EdgeList {
        n,
        edges,
        probs: if saw_prob == Some(true) {
            Some(probs)
        } else {
            None
        },
        original_id,
    })
}

fn parse_prob(tok: &str, line: usize) -> Result<f64, GraphError> {
    tok.parse::<f64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad probability: {e}"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `graph` as a `u v p` edge list (compact ids).
pub fn write_edge_list<W: std::io::Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# n={} m={}", graph.n(), graph.m())?;
    for (u, v, p) in graph.edges() {
        writeln!(w, "{u} {v} {p}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::InProbs;

    #[test]
    fn parses_comments_and_blank_lines() {
        let input = "# header\n\n0 1\n1 2\n% konect style\n2 0\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.edges.len(), 3);
        assert!(el.probs.is_none());
    }

    #[test]
    fn compacts_sparse_ids() {
        let input = "1000 42\n42 7\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.original_id, vec![1000, 42, 7]);
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn parses_probabilities() {
        let input = "0 1 0.5\n1 2 0.25\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.probs.as_deref(), Some(&[0.5, 0.25][..]));
        let g = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!(g.in_probs(1), InProbs::PerEdge(&[0.5]));
    }

    #[test]
    fn rejects_inconsistent_columns() {
        let input = "0 1 0.5\n1 2\n";
        assert!(matches!(
            read_edge_list(input.as_bytes()).unwrap_err(),
            GraphError::Parse { line: 2, .. }
        ));
    }

    #[test]
    fn rejects_garbage() {
        let input = "0 x\n";
        assert!(matches!(
            read_edge_list(input.as_bytes()).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        let input = "0\n";
        assert!(read_edge_list(input.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = crate::generators::erdos_renyi_gnm(30, 80, WeightModel::Wc, 11);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let el = read_edge_list(buf.as_slice()).unwrap();
        // The writer's header pins n and keeps ids verbatim, so the round
        // trip is exact: same node count, same edges, same probabilities.
        assert_eq!(el.n, g.n());
        let g2 = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn roundtrip_preserves_self_loops_zero_weights_and_isolated_nodes() {
        // Node 4 is isolated, (0,0) is a self-loop, (1,2) has weight zero
        // — the shapes delta compaction must not silently drop.
        let g = GraphBuilder::new(5)
            .keep_self_loops(true)
            .add_weighted_edge(0, 0, 0.5)
            .add_weighted_edge(1, 2, 0.0)
            .add_weighted_edge(3, 1, 0.25)
            .build()
            .unwrap();
        assert_eq!(g.m(), 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let el = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(el.n, 5);
        assert_eq!(el.original_id, (0..5).collect::<Vec<u64>>());
        let g2 = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!(g2.n(), 5, "isolated node must survive");
        assert_eq!(g2.m(), 3, "self-loop and zero-weight edge must survive");
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn header_rejects_out_of_range_ids() {
        let input = "# n=3 m=1\n0 7\n";
        assert!(matches!(
            read_edge_list(input.as_bytes()).unwrap_err(),
            GraphError::Parse { line: 2, .. }
        ));
    }

    #[test]
    fn header_after_first_edge_is_ignored() {
        // A size header only switches modes before any edge is parsed;
        // later comments stay comments.
        let input = "5 6\n# n=2 m=1\n6 5\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 2);
        assert_eq!(el.original_id, vec![5, 6]);
        assert_eq!(el.edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn empty_input_parses_but_fails_graph_build_typed() {
        // No edges, no header: the edge list is legal (n = 0) but a graph
        // needs at least one node, and the failure must be typed.
        for input in ["", "# only a comment\n", "\n\n% konect\n"] {
            let el = read_edge_list(input.as_bytes()).unwrap();
            assert_eq!(el.n, 0, "{input:?}");
            assert_eq!(el.edges.len(), 0);
            assert!(matches!(
                el.into_graph(WeightModel::Wc).unwrap_err(),
                GraphError::EmptyGraph
            ));
        }
        // A header declaring n=0 is the same typed failure, not a panic.
        let el = read_edge_list(&b"# n=0 m=0\n"[..]).unwrap();
        assert!(matches!(
            el.into_graph(WeightModel::Wc).unwrap_err(),
            GraphError::EmptyGraph
        ));
    }

    #[test]
    fn single_isolated_node_round_trips() {
        // The smallest graph the builder accepts: one node, zero edges.
        // Only the `# n= m=` header carries it through text form.
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!((g.n(), g.m()), (1, 0));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), "# n=1 m=0\n");
        let el = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(el.n, 1);
        let g2 = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!((g2.n(), g2.m()), (1, 0));
    }

    #[test]
    fn duplicate_parallel_edges_dedup_keeping_the_first() {
        // Unweighted duplicates collapse to one edge.
        let el = read_edge_list(&b"0 1\n0 1\n1 2\n0 1\n"[..]).unwrap();
        assert_eq!(el.edges.len(), 4, "the parser keeps duplicates verbatim");
        let g = el.into_graph(WeightModel::UniformIc { p: 0.5 }).unwrap();
        assert_eq!(g.m(), 2, "the builder dedups parallel edges");
        // Weighted duplicates keep the first-listed probability.
        let el = read_edge_list(&b"0 1 0.9\n0 1 0.1\n"[..]).unwrap();
        let g = el.into_graph(WeightModel::Wc).unwrap();
        assert_eq!(g.m(), 1);
        let (_, _, p) = g.edges().next().unwrap();
        assert_eq!(p, 0.9);
    }

    #[test]
    fn crlf_edge_lists_round_trip() {
        // Files written on Windows (or fetched through a CRLF-translating
        // proxy) must parse identically to their LF twins.
        let lf = "# n=3 m=2\n0 1 0.5\n1 2 0.25\n";
        let crlf = lf.replace('\n', "\r\n");
        let a = read_edge_list(lf.as_bytes()).unwrap();
        let b = read_edge_list(crlf.as_bytes()).unwrap();
        assert_eq!(a.n, b.n);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.probs, b.probs);
        // And a headerless CRLF list, where `lines()` + trim carries it.
        let el = read_edge_list(&b"5 6\r\n6 7\r\n"[..]).unwrap();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("subsim_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = crate::generators::cycle_graph(6, WeightModel::Wc);
        write_edge_list(&g, std::fs::File::create(&path).unwrap()).unwrap();
        let el = read_edge_list_file(&path).unwrap();
        assert_eq!(el.edges.len(), 6);
        std::fs::remove_file(&path).ok();
    }
}
