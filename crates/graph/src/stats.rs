//! Degree and weight summaries (Table 2 reproduction support).

use crate::csr::{Graph, NodeId};

/// Summary statistics of a graph, in the shape of the paper's Table 2 plus
/// the degree/weight facts the cost analysis (Lemma 4) cares about.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count `n`.
    pub n: usize,
    /// Directed edge count `m`.
    pub m: usize,
    /// Average degree `m / n`.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of nodes with no incident edges.
    pub isolated_nodes: usize,
    /// Maximum over nodes of `Σ p(u, v)` — the `θ(d_in)` bound of
    /// Theorem 1; `<= 1` means the WC-like `O(k·n·log n/ε²)` regime.
    pub max_in_prob_sum: f64,
    /// Mean over nodes of `Σ p(u, v)`.
    pub avg_in_prob_sum: f64,
}

impl GraphStats {
    /// Computes statistics in one pass over the graph.
    pub fn compute(g: &Graph) -> Self {
        let n = g.n();
        let mut max_in = 0usize;
        let mut max_out = 0usize;
        let mut isolated = 0usize;
        let mut max_sum: f64 = 0.0;
        let mut total_sum = 0.0;
        for v in 0..n as NodeId {
            let din = g.in_degree(v);
            let dout = g.out_degree(v);
            max_in = max_in.max(din);
            max_out = max_out.max(dout);
            if din == 0 && dout == 0 {
                isolated += 1;
            }
            let s = g.in_prob_sum(v);
            max_sum = max_sum.max(s);
            total_sum += s;
        }
        GraphStats {
            n,
            m: g.m(),
            avg_degree: g.m() as f64 / n as f64,
            max_in_degree: max_in,
            max_out_degree: max_out,
            isolated_nodes: isolated,
            max_in_prob_sum: max_sum,
            avg_in_prob_sum: total_sum / n as f64,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_in={} max_out={} isolated={} max_Σp={:.3} avg_Σp={:.3}",
            self.n,
            self.m,
            self.avg_degree,
            self.max_in_degree,
            self.max_out_degree,
            self.isolated_nodes,
            self.max_in_prob_sum,
            self.avg_in_prob_sum
        )
    }
}

/// In-degree histogram: `hist[d]` counts nodes with in-degree `d`
/// (truncated at `max_bucket`, with the final bucket absorbing the tail).
pub fn in_degree_histogram(g: &Graph, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for v in 0..g.n() as NodeId {
        hist[g.in_degree(v).min(max_bucket)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, star_graph};
    use crate::weights::WeightModel;

    #[test]
    fn path_stats() {
        let g = path_graph(5, WeightModel::Wc);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 4);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_nodes, 0);
        assert!((s.max_in_prob_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_stats() {
        let g = star_graph(6, WeightModel::UniformIc { p: 0.2 });
        let s = GraphStats::compute(&g);
        assert_eq!(s.max_out_degree, 5);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.avg_in_prob_sum - 5.0 * 0.2 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn wc_bounds_prob_sum_by_one() {
        let g = crate::generators::barabasi_albert(300, 4, WeightModel::Wc, 2);
        let s = GraphStats::compute(&g);
        assert!(s.max_in_prob_sum <= 1.0 + 1e-9);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = crate::generators::barabasi_albert(300, 4, WeightModel::Wc, 2);
        let h = in_degree_histogram(&g, 32);
        assert_eq!(h.iter().sum::<usize>(), 300);
    }

    #[test]
    fn display_is_readable() {
        let g = path_graph(3, WeightModel::Wc);
        let s = GraphStats::compute(&g).to_string();
        assert!(s.contains("n=3") && s.contains("m=2"));
    }
}
