//! Graph transformations used in IM preprocessing pipelines.

use crate::builder::GraphBuilder;
use crate::components::weakly_connected_components;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// The transpose `Gᵀ`: every edge `u -> v` becomes `v -> u`, keeping its
/// probability. RR sets of `G` are forward-reachable sets of `Gᵀ`, which
/// some test oracles exploit.
pub fn transpose(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new(g.n());
    for (u, v, p) in g.edges() {
        b = b.add_weighted_edge(v, u, p);
    }
    b.build().expect("transposing a valid graph cannot fail")
}

/// The subgraph induced by `nodes` (deduplicated), with probabilities
/// preserved. Returns the graph over compacted ids plus the mapping
/// `new_id -> old_id`.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
    let mut keep: Vec<bool> = vec![false; g.n()];
    for &v in nodes {
        if v as usize >= g.n() {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                n: g.n(),
            });
        }
        keep[v as usize] = true;
    }
    let mut old_of_new: Vec<NodeId> = Vec::new();
    let mut new_of_old: Vec<u32> = vec![u32::MAX; g.n()];
    for v in 0..g.n() {
        if keep[v] {
            new_of_old[v] = old_of_new.len() as u32;
            old_of_new.push(v as NodeId);
        }
    }
    if old_of_new.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    let mut b = GraphBuilder::new(old_of_new.len());
    let mut any_edge = false;
    for (u, v, p) in g.edges() {
        if keep[u as usize] && keep[v as usize] {
            b = b.add_weighted_edge(new_of_old[u as usize], new_of_old[v as usize], p);
            any_edge = true;
        }
    }
    if !any_edge {
        // GraphBuilder with custom probs needs at least zero edges — fine;
        // but an edgeless builder with custom_probs=None is what we get,
        // so just build a plain empty graph.
        let g2 = GraphBuilder::new(old_of_new.len()).build()?;
        return Ok((g2, old_of_new));
    }
    Ok((b.build()?, old_of_new))
}

/// Restricts `g` to its largest weakly connected component. Returns the
/// subgraph and the `new_id -> old_id` mapping.
pub fn largest_wcc(g: &Graph) -> (Graph, Vec<NodeId>) {
    let comps = weakly_connected_components(g);
    let (biggest, _) = comps.largest();
    let nodes: Vec<NodeId> = (0..g.n() as NodeId)
        .filter(|&v| comps.label[v as usize] == biggest)
        .collect();
    induced_subgraph(g, &nodes).expect("largest WCC is nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::path_graph;
    use crate::weights::WeightModel;

    #[test]
    fn transpose_reverses_edges() {
        let g = path_graph(4, WeightModel::Wc);
        let t = transpose(&g);
        assert_eq!(t.m(), 3);
        assert_eq!(t.out_neighbors(3), &[2]);
        assert_eq!(t.in_degree(0), 1);
        // Double transpose is the identity on the edge set.
        let tt = transpose(&t);
        let mut a: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let mut b: Vec<_> = tt.edges().map(|(u, v, _)| (u, v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_preserves_probabilities() {
        let g = GraphBuilder::new(3)
            .add_weighted_edge(0, 1, 0.3)
            .add_weighted_edge(1, 2, 0.8)
            .build()
            .unwrap();
        let t = transpose(&g);
        assert_eq!(t.prob_of_edge(1, 0), Some(0.3));
        assert_eq!(t.prob_of_edge(2, 1), Some(0.8));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        // 0 -> 1 -> 2 -> 3; induce on {1, 2, 3}.
        let g = path_graph(4, WeightModel::Wc);
        let (sub, map) = induced_subgraph(&g, &[1, 2, 3]).unwrap();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn induced_subgraph_rejects_bad_nodes() {
        let g = path_graph(3, WeightModel::Wc);
        assert!(induced_subgraph(&g, &[7]).is_err());
        assert!(induced_subgraph(&g, &[]).is_err());
    }

    #[test]
    fn induced_subgraph_without_edges() {
        let g = path_graph(4, WeightModel::Wc);
        let (sub, map) = induced_subgraph(&g, &[0, 2]).unwrap();
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 0);
        assert_eq!(map, vec![0, 2]);
    }

    #[test]
    fn largest_wcc_selects_big_island() {
        let g = GraphBuilder::new(7)
            .edges([(0, 1), (1, 2), (2, 3), (4, 5)])
            .build()
            .unwrap();
        let (sub, map) = largest_wcc(&g);
        assert_eq!(sub.n(), 4);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert_eq!(sub.m(), 3);
    }
}
