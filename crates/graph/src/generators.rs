//! Synthetic graph generators.
//!
//! These stand in for the paper's SNAP/KONECT datasets (Table 2) at laptop
//! scale; `DESIGN.md` §3 documents the substitution. The heavy-tailed
//! generators (Barabási–Albert, R-MAT) reproduce the in-degree skew that
//! makes WC-model RR sets cheap and WC-variant RR sets explosive — the
//! regimes the paper's experiments sweep.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::weights::WeightModel;
use rand::Rng;
use std::collections::HashSet;
use subsim_sampling::rng_from_seed;

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_per_node` existing nodes chosen proportionally to degree. Edges are
/// materialized in both directions (the classic model is undirected),
/// yielding `≈ 2·m_per_node·n` directed edges.
///
/// # Panics
///
/// Panics if `n < 2` or `m_per_node == 0`.
pub fn barabasi_albert(n: usize, m_per_node: usize, model: WeightModel, seed: u64) -> Graph {
    assert!(n >= 2, "barabasi_albert needs at least 2 nodes");
    assert!(m_per_node >= 1, "m_per_node must be positive");
    let mut rng = rng_from_seed(seed);
    // `targets` holds one entry per edge endpoint; sampling an index
    // uniformly is degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_per_node);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m_per_node);
    // Seed clique on the first m_per_node+1 nodes (or a single edge).
    let core = (m_per_node + 1).min(n);
    for u in 0..core {
        for v in 0..u {
            edges.push((u as NodeId, v as NodeId));
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    for u in core..n {
        // Small Vec keeps insertion order deterministic (HashSet iteration
        // order would vary across runs and break seeded reproducibility).
        let mut picked: Vec<NodeId> = Vec::with_capacity(m_per_node);
        while picked.len() < m_per_node {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        for v in picked {
            edges.push((u as NodeId, v));
            endpoints.push(u as NodeId);
            endpoints.push(v);
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .undirected(true)
        .weights(model)
        .weight_seed(seed ^ 0x9e37_79b9)
        .build()
        .expect("generator produces valid edges")
}

/// Erdős–Rényi `G(n, m)`: `m` distinct directed edges chosen uniformly at
/// random (no self-loops).
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges `n·(n-1)`.
pub fn erdos_renyi_gnm(n: usize, m: usize, model: WeightModel, seed: u64) -> Graph {
    assert!(n >= 2, "erdos_renyi_gnm needs at least 2 nodes");
    assert!(
        (m as u128) <= (n as u128) * (n as u128 - 1),
        "m too large for simple directed graph"
    );
    let mut rng = rng_from_seed(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            edges.push((u, v));
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .weights(model)
        .weight_seed(seed ^ 0x9e37_79b9)
        .build()
        .expect("generator produces valid edges")
}

/// R-MAT recursive matrix generator: `n = 2^scale` nodes, `m` directed
/// edges with power-law in/out degrees. Default partition probabilities
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` follow the Graph500 spec;
/// duplicates and self-loops are dropped, so the realized edge count may
/// be slightly below `m`.
pub fn rmat(scale: u32, m: usize, model: WeightModel, seed: u64) -> Graph {
    rmat_with(scale, m, 0.57, 0.19, 0.19, model, seed)
}

/// R-MAT with explicit quadrant probabilities `a`, `b`, `c` (and
/// `d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics unless `a, b, c >= 0` and `a + b + c <= 1`.
pub fn rmat_with(
    scale: u32,
    m: usize,
    a: f64,
    b: f64,
    c: f64,
    model: WeightModel,
    seed: u64,
) -> Graph {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12);
    let n = 1usize << scale;
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r = rng.gen::<f64>();
            // Add ±10% noise per level (standard smoothing) to avoid exact
            // self-similarity artifacts.
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let aa = a * noise;
            let bb = b * noise;
            let cc = c * noise;
            let total = aa + bb + cc + (1.0 - a - b - c) * noise;
            let r = r * total;
            u <<= 1;
            v <<= 1;
            if r < aa {
                // top-left
            } else if r < aa + bb {
                v |= 1;
            } else if r < aa + bb + cc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .weights(model)
        .weight_seed(seed ^ 0x9e37_79b9)
        .build()
        .expect("generator produces valid edges")
}

/// Watts–Strogatz small world: ring of `n` nodes, each connected to its
/// `k` nearest neighbors (k even), with each edge rewired with probability
/// `beta`. Materialized in both directions.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, model: WeightModel, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and >= 2");
    assert!(n > k, "n must exceed k");
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for j in 1..=k / 2 {
            let mut v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform non-self target.
                loop {
                    v = rng.gen_range(0..n);
                    if v != u {
                        break;
                    }
                }
            }
            edges.push((u as NodeId, v as NodeId));
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .undirected(true)
        .weights(model)
        .weight_seed(seed ^ 0x9e37_79b9)
        .build()
        .expect("generator produces valid edges")
}

/// Directed path `0 -> 1 -> … -> n-1`.
pub fn path_graph(n: usize, model: WeightModel) -> Graph {
    GraphBuilder::new(n)
        .edges((0..n.saturating_sub(1)).map(|u| (u as NodeId, u as NodeId + 1)))
        .weights(model)
        .build()
        .expect("valid path")
}

/// Directed cycle on `n` nodes.
pub fn cycle_graph(n: usize, model: WeightModel) -> Graph {
    GraphBuilder::new(n)
        .edges((0..n).map(|u| (u as NodeId, ((u + 1) % n) as NodeId)))
        .weights(model)
        .build()
        .expect("valid cycle")
}

/// Star with the hub pointing at every leaf: `0 -> i` for `i in 1..n`.
pub fn star_graph(n: usize, model: WeightModel) -> Graph {
    GraphBuilder::new(n)
        .edges((1..n).map(|v| (0, v as NodeId)))
        .weights(model)
        .build()
        .expect("valid star")
}

/// Complete directed graph (every ordered pair, no self-loops). Quadratic;
/// only for tiny fixtures.
pub fn complete_graph(n: usize, model: WeightModel) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .weights(model)
        .build()
        .expect("valid complete graph")
}

/// Configuration-model-style generator with a power-law out-degree
/// sequence: node `v`'s out-degree is drawn from a Pareto-ish law
/// `P(d >= x) ∝ x^(1-gamma)` truncated to `[1, max_degree]`, and targets
/// are chosen uniformly (rejecting self-loops). Duplicates are dropped by
/// the builder, so realized degrees can be slightly lower.
///
/// Unlike Barabási–Albert this decouples the in- and out-degree tails,
/// mimicking follower-style networks (Twitter) where out-degree skew
/// drives RR-set membership and in-degree skew drives generation cost.
pub fn power_law_configuration(
    n: usize,
    gamma: f64,
    max_degree: usize,
    model: WeightModel,
    seed: u64,
) -> Graph {
    assert!(n >= 2, "need at least 2 nodes");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let mut rng = rng_from_seed(seed);
    let max_degree = max_degree.min(n - 1).max(1);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for u in 0..n {
        // Inverse-CDF draw from the truncated Pareto: d = floor(U^(-1/(γ-1))).
        let x: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let d = (x.powf(-1.0 / (gamma - 1.0)) as usize).clamp(1, max_degree);
        for _ in 0..d {
            loop {
                let v = rng.gen_range(0..n);
                if v != u {
                    edges.push((u as NodeId, v as NodeId));
                    break;
                }
            }
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .weights(model)
        .weight_seed(seed ^ 0x9e37_79b9)
        .build()
        .expect("generator produces valid edges")
}

/// Forest-fire model (Leskovec et al. 2005): each new node picks a random
/// ambassador and "burns" through the existing graph, linking to every
/// burned node; forward burns spread with probability `p_forward` per
/// out-edge. Produces densifying, heavy-tailed, community-ish networks.
pub fn forest_fire(n: usize, p_forward: f64, model: WeightModel, seed: u64) -> Graph {
    assert!(n >= 2, "need at least 2 nodes");
    assert!(
        (0.0..1.0).contains(&p_forward),
        "p_forward must be in [0,1)"
    );
    let mut rng = rng_from_seed(seed);
    // Adjacency grown incrementally (out-edges only; burning follows both
    // directions via a reverse list).
    let mut out_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut burned = vec![0u32; n];
    let mut epoch = 0u32;
    let mut queue: Vec<NodeId> = Vec::new();
    for u in 1..n {
        epoch += 1;
        let ambassador = rng.gen_range(0..u) as NodeId;
        queue.clear();
        queue.push(ambassador);
        burned[ambassador as usize] = epoch;
        let mut head = 0;
        // Cap the burn to keep the expected degree bounded even for
        // p_forward close to 1.
        let cap = 1 + (8.0 / (1.0 - p_forward)) as usize;
        while head < queue.len() && queue.len() < cap {
            let w = queue[head];
            head += 1;
            for &x in out_adj[w as usize].iter().chain(in_adj[w as usize].iter()) {
                if burned[x as usize] != epoch && rng.gen::<f64>() < p_forward {
                    burned[x as usize] = epoch;
                    queue.push(x);
                }
            }
        }
        for &w in &queue {
            edges.push((u as NodeId, w));
            out_adj[u].push(w);
            in_adj[w as usize].push(u as NodeId);
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .weights(model)
        .weight_seed(seed ^ 0x9e37_79b9)
        .build()
        .expect("generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_size_and_connectivity() {
        let g = barabasi_albert(500, 4, WeightModel::Wc, 42);
        assert_eq!(g.n(), 500);
        // ~2 * 4 * 500 directed edges (minus clique adjustment, dedup)
        assert!(g.m() > 3000, "m = {}", g.m());
        // No isolated nodes: everyone attached at birth.
        for v in 0..500 {
            assert!(g.out_degree(v) + g.in_degree(v) > 0);
        }
    }

    #[test]
    fn ba_degree_skew() {
        let g = barabasi_albert(2000, 3, WeightModel::Wc, 7);
        let max_deg = (0..2000u32).map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.m() as f64 / g.n() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected heavy tail: max {max_deg} vs avg {avg}"
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 500, WeightModel::Wc, 1);
        assert_eq!(g.m(), 500);
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn rmat_size_and_skew() {
        let g = rmat(10, 8192, WeightModel::Wc, 3);
        assert_eq!(g.n(), 1024);
        assert!(g.m() > 6000, "m = {}", g.m());
        let max_deg = (0..1024u32).map(|v| g.in_degree(v)).max().unwrap();
        assert!(max_deg > 40, "expected hub, max in-degree {max_deg}");
    }

    #[test]
    fn watts_strogatz_degree() {
        let g = watts_strogatz(200, 4, 0.1, WeightModel::Wc, 5);
        assert_eq!(g.n(), 200);
        // Each node initiated k/2 = 2 undirected edges -> ~4n directed.
        assert!(g.m() >= 780 && g.m() <= 800, "m = {}", g.m());
    }

    #[test]
    fn fixtures_shapes() {
        let p = path_graph(5, WeightModel::Wc);
        assert_eq!(p.m(), 4);
        assert_eq!(p.out_degree(4), 0);
        let c = cycle_graph(5, WeightModel::Wc);
        assert_eq!(c.m(), 5);
        assert_eq!(c.in_degree(0), 1);
        let s = star_graph(5, WeightModel::Wc);
        assert_eq!(s.out_degree(0), 4);
        assert_eq!(s.in_degree(0), 0);
        let k = complete_graph(4, WeightModel::Wc);
        assert_eq!(k.m(), 12);
    }

    #[test]
    fn power_law_configuration_shape() {
        let g = power_law_configuration(1000, 2.2, 200, WeightModel::Wc, 13);
        assert_eq!(g.n(), 1000);
        assert!(g.m() >= 900, "m = {}", g.m());
        let max_out = (0..1000u32).map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.m() as f64 / 1000.0;
        assert!(
            max_out as f64 > 4.0 * avg,
            "expected out-degree tail: {max_out} vs {avg}"
        );
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn forest_fire_grows_connected() {
        let g = forest_fire(500, 0.3, WeightModel::Wc, 14);
        assert_eq!(g.n(), 500);
        assert!(g.m() >= 499, "m = {}", g.m());
        // Every non-root node linked to at least one predecessor.
        for v in 1..500u32 {
            assert!(g.out_degree(v) >= 1, "node {v} has no out-edges");
        }
    }

    #[test]
    fn forest_fire_density_increases_with_p() {
        let sparse = forest_fire(400, 0.1, WeightModel::Wc, 15);
        let dense = forest_fire(400, 0.6, WeightModel::Wc, 15);
        assert!(dense.m() > sparse.m(), "{} <= {}", dense.m(), sparse.m());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = barabasi_albert(300, 3, WeightModel::Wc, 9);
        let b = barabasi_albert(300, 3, WeightModel::Wc, 9);
        assert_eq!(a.m(), b.m());
        let ea: Vec<_> = a.edges().map(|(u, v, _)| (u, v)).collect();
        let eb: Vec<_> = b.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(ea, eb);
    }
}
