//! Property-based tests for graph construction and weight models.

use proptest::prelude::*;
use subsim_graph::{generators, GraphBuilder, InProbs, NodeId, WeightModel};

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..(n * 4).min(256))
}

fn arb_model() -> impl Strategy<Value = WeightModel> {
    prop_oneof![
        Just(WeightModel::Wc),
        (1.0f64..10.0).prop_map(|theta| WeightModel::WcVariant { theta }),
        (0.0f64..=1.0).prop_map(|p| WeightModel::UniformIc { p }),
        (0.1f64..5.0).prop_map(|lambda| WeightModel::Exponential { lambda }),
        Just(WeightModel::Weibull),
        Just(WeightModel::Trivalency),
        Just(WeightModel::Lt),
    ]
}

proptest! {
    #[test]
    fn builder_always_produces_valid_graphs(
        edges in arb_edges(30),
        model in arb_model(),
        undirected in any::<bool>(),
        seed in 0u64..u64::MAX,
    ) {
        let g = GraphBuilder::new(30)
            .edges(edges.clone())
            .undirected(undirected)
            .weights(model)
            .weight_seed(seed)
            .build()
            .unwrap();
        g.validate().unwrap();
        // Degree sums equal m in both directions.
        let out: usize = (0..30u32).map(|v| g.out_degree(v)).sum();
        let inn: usize = (0..30u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out, g.m());
        prop_assert_eq!(inn, g.m());
        // No self loops (default), no parallel edges.
        let mut pairs: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        for &(u, v) in &pairs {
            prop_assert_ne!(u, v);
        }
        let len = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), len, "parallel edges survived dedup");
        // Undirected graphs are symmetric.
        if undirected {
            for (u, v, _) in g.edges() {
                prop_assert!(g.out_neighbors(v).contains(&u), "missing reverse of ({u},{v})");
            }
        }
    }

    #[test]
    fn per_edge_probs_sorted_descending(
        edges in arb_edges(20),
        seed in 0u64..u64::MAX,
    ) {
        let g = GraphBuilder::new(20)
            .edges(edges)
            .weights(WeightModel::Weibull)
            .weight_seed(seed)
            .build()
            .unwrap();
        for v in 0..20u32 {
            if let InProbs::PerEdge(ps) = g.in_probs(v) {
                prop_assert!(ps.windows(2).all(|w| w[0] >= w[1]), "node {v}: {ps:?}");
                // Normalized models sum to ~1 for nonempty in-lists.
                if !ps.is_empty() {
                    let s: f64 = ps.iter().sum();
                    prop_assert!((s - 1.0).abs() < 1e-6, "node {v} sums to {s}");
                }
            }
        }
    }

    #[test]
    fn lt_weights_never_exceed_one(edges in arb_edges(25)) {
        let g = GraphBuilder::new(25)
            .edges(edges)
            .weights(WeightModel::Lt)
            .build()
            .unwrap();
        for v in 0..25u32 {
            prop_assert!(g.in_prob_sum(v) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn generators_respect_requested_sizes(
        n in 10usize..100,
        seed in 0u64..u64::MAX,
    ) {
        let m = n * 2;
        let g = generators::erdos_renyi_gnm(n, m, WeightModel::Wc, seed);
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), m);
        let g = generators::barabasi_albert(n, 3, WeightModel::Wc, seed);
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.m() >= n.saturating_sub(4) * 3);
    }

    #[test]
    fn edge_list_roundtrip(edges in arb_edges(15), seed in 0u64..u64::MAX) {
        prop_assume!(!edges.is_empty());
        let g = GraphBuilder::new(15)
            .edges(edges)
            .weights(WeightModel::Exponential { lambda: 1.0 })
            .weight_seed(seed)
            .build()
            .unwrap();
        prop_assume!(g.m() > 0);
        let mut buf = Vec::new();
        subsim_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let el = subsim_graph::io::read_edge_list(buf.as_slice()).unwrap();
        let g2 = el.into_graph(WeightModel::Wc).unwrap();
        prop_assert_eq!(g2.m(), g.m());
        // Probabilities survive the text roundtrip (modulo id compaction):
        // compare sorted multisets.
        let mut pa: Vec<u64> = g.edges().map(|(_, _, p)| p.to_bits()).collect();
        let mut pb: Vec<u64> = g2.edges().map(|(_, _, p)| p.to_bits()).collect();
        pa.sort_unstable();
        pb.sort_unstable();
        prop_assert_eq!(pa, pb);
    }
}
