//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|ablation|genwc|index|all]...
//! experiments bench-pr3 [out.json]   # scheduler/selection bench (never part of `all`)
//! experiments bench-pr4 [out.json]   # incremental-repair bench (never part of `all`)
//! experiments bench-pr6 [out.json]   # shard-scaling bench (never part of `all`)
//! experiments bench-pr7 [out.json]   # sentinel-truncation bench (never part of `all`)
//! experiments bench-pr8 [out.json]   # flat-frontier kernel bench (never part of `all`)
//! experiments bench-pr9 [out.json]   # sketched-validation bench (never part of `all`)
//! experiments bench-pr10 [out.json]  # linear-threshold kernel bench (never part of `all`)
//! ```
//!
//! Scale is controlled by `SUBSIM_SCALE=small|paper` (default `paper`).
//! Output rows mirror the paper's series; `EXPERIMENTS.md` records a full
//! run next to the paper's reported numbers.

use subsim_bench::harness;
use subsim_bench::workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wants = |what: &str| args.is_empty() || args.iter().any(|a| a == what || a == "all");

    // Explicit-only (deliberately not reachable through `all` or the
    // empty-args default): writes a JSON artifact rather than a figure.
    if args.first().map(String::as_str) == Some("bench-pr3") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr3.json");
        harness::bench_pr3(scale, out);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-pr4") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr4.json");
        harness::bench_pr4(scale, out);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-pr6") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr6.json");
        harness::bench_pr6(scale, out);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-pr7") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr7.json");
        harness::bench_pr7(scale, out);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-pr8") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr8.json");
        harness::bench_pr8(scale, out);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-pr9") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr9.json");
        harness::bench_pr9(scale, out);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-pr10") {
        let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pr10.json");
        harness::bench_pr10(scale, out);
        return;
    }

    harness::preamble(scale);
    if wants("table2") {
        harness::table2(scale);
    }
    if wants("fig1") {
        harness::fig1(scale);
    }
    if wants("fig2") {
        harness::fig2(scale);
    }
    if wants("fig3") {
        harness::fig3(scale);
    }
    if wants("fig4") {
        harness::fig4(scale);
    }
    if wants("fig5") {
        harness::fig5(scale);
    }
    if wants("fig6") {
        harness::fig6(scale);
    }
    if wants("fig7") {
        harness::fig7(scale);
    }
    if wants("ablation") {
        harness::ablation(scale);
    }
    if wants("genwc") {
        harness::gen_wc(scale);
    }
    if wants("index") {
        harness::index_amortization(scale);
    }
}
