//! Benchmark harness for the SUBSIM/HIST reproduction.
//!
//! - [`workloads`] — Table 2 stand-in datasets and the θ/p calibration
//!   that realizes the paper's average-RR-size sweeps.
//! - [`harness`] — one function per paper figure/table; the
//!   `experiments` binary dispatches into them, and the Criterion benches
//!   reuse the same workloads at micro scale.

#![warn(missing_docs)]

pub mod harness;
pub mod workloads;
