//! Benchmark workloads: laptop-scale stand-ins for the paper's datasets
//! (Table 2) and the calibration machinery for the high-influence sweeps.
//!
//! The four datasets keep the originals' *shape* — directedness, average
//! degree, heavy-tailed degree distribution — at a size a laptop sweeps in
//! minutes (`DESIGN.md` §3 documents the substitution):
//!
//! | name | stands for | generator | avg directed degree |
//! |---|---|---|---|
//! | `pokec-s` | Pokec (dir., m/n ≈ 19) | R-MAT | ≈ 19 |
//! | `orkut-s` | Orkut (undir., 2m/n ≈ 76) | Barabási–Albert | ≈ 76 |
//! | `twitter-s` | Twitter (dir., m/n ≈ 36) | R-MAT | ≈ 36 |
//! | `friendster-s` | Friendster (undir., 2m/n ≈ 55) | Barabási–Albert | ≈ 55 |

use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
use subsim_graph::{generators, Graph, WeightModel};
use subsim_sampling::rng_from_seed;

/// Scale knob: `Small` for CI/tests, `Paper` for the figures in
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~2k nodes; every experiment finishes in seconds.
    Small,
    /// ~16k nodes; the scale used for the recorded results.
    Paper,
}

impl Scale {
    /// Reads `SUBSIM_SCALE=small|paper` from the environment
    /// (default `Paper` for the experiments binary).
    pub fn from_env() -> Self {
        match std::env::var("SUBSIM_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            _ => Scale::Paper,
        }
    }

    fn n(self) -> usize {
        match self {
            Scale::Small => 1 << 11,
            Scale::Paper => 1 << 14,
        }
    }

    fn rmat_scale(self) -> u32 {
        match self {
            Scale::Small => 11,
            Scale::Paper => 14,
        }
    }
}

/// The four benchmark datasets, in the paper's Table 2 order.
pub const DATASETS: [&str; 4] = ["pokec-s", "orkut-s", "twitter-s", "friendster-s"];

/// Builds a dataset by name under the given weight model.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn dataset(name: &str, model: WeightModel, scale: Scale) -> Graph {
    let n = scale.n();
    match name {
        "pokec-s" => generators::rmat(scale.rmat_scale(), n * 19, model, 1),
        "orkut-s" => generators::barabasi_albert(n, 38, model, 2),
        "twitter-s" => generators::rmat(scale.rmat_scale(), n * 36, model, 3),
        "friendster-s" => generators::barabasi_albert(n, 27, model, 4),
        other => panic!("unknown dataset {other:?}"),
    }
}

/// Measures the average random-RR-set size under SUBSIM generation.
pub fn avg_rr_size(g: &Graph, samples: usize, seed: u64) -> f64 {
    let sampler = RrSampler::new(g, RrStrategy::SubsimIc);
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(seed);
    let mut total = 0usize;
    for _ in 0..samples {
        total += sampler.generate(&mut ctx, &mut rng);
    }
    total as f64 / samples as f64
}

/// Memoized calibration results: rebuilding a 1M-edge dataset ~15 times
/// per binary-search is expensive, and several figures calibrate the same
/// (dataset, target) pair.
static CALIBRATION_CACHE: std::sync::OnceLock<
    std::sync::Mutex<std::collections::HashMap<(String, u64), f64>>,
> = std::sync::OnceLock::new();

fn calibration_cached(key_name: &str, target: f64, compute: impl FnOnce() -> f64) -> f64 {
    let cache = CALIBRATION_CACHE.get_or_init(Default::default);
    let key = (key_name.to_string(), target.to_bits());
    if let Some(&v) = cache.lock().unwrap().get(&key) {
        return v;
    }
    let v = compute();
    cache.lock().unwrap().insert(key, v);
    v
}

/// Binary-searches the WC-variant boost `θ` so that the average RR-set
/// size hits `target` (paper Section 7: the θ₅₀ … θ₃₂ₖ settings).
///
/// `rebuild` must return the dataset under `WcVariant { theta }`.
pub fn calibrate_theta<F>(rebuild: F, target: f64, seed: u64) -> f64
where
    F: Fn(f64) -> Graph,
{
    let mut lo = 1.0f64;
    let mut hi = 1.0f64;
    // Grow hi until the target is bracketed (or the graph saturates).
    for _ in 0..12 {
        let g = rebuild(hi);
        if avg_rr_size(&g, 200, seed) >= target || hi > 4096.0 {
            break;
        }
        hi *= 2.0;
    }
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        let g = rebuild(mid);
        if avg_rr_size(&g, 200, seed) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Cached θ calibration for a named dataset (one binary search per
/// `(dataset, scale, target)` per process).
pub fn calibrated_theta_for(name: &str, scale: Scale, target: f64) -> f64 {
    calibration_cached(&format!("theta:{name}:{scale:?}"), target, || {
        calibrate_theta(
            |t| dataset(name, WeightModel::WcVariant { theta: t }, scale),
            target,
            333,
        )
    })
}

/// Cached p calibration for a named dataset.
pub fn calibrated_p_for(name: &str, scale: Scale, target: f64) -> f64 {
    calibration_cached(&format!("p:{name}:{scale:?}"), target, || {
        calibrate_p(
            |p| dataset(name, WeightModel::UniformIc { p }, scale),
            target,
            333,
        )
    })
}

/// Binary-searches the Uniform-IC probability `p` for a target average
/// RR-set size (the p₅₀ … p₃₂ₖ settings).
pub fn calibrate_p<F>(rebuild: F, target: f64, seed: u64) -> f64
where
    F: Fn(f64) -> Graph,
{
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..20 {
        let mid = 0.5 * (lo + hi);
        let g = rebuild(mid);
        if avg_rr_size(&g, 200, seed) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_expected_density() {
        let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
        let avg = g.m() as f64 / g.n() as f64;
        assert!(avg > 10.0 && avg < 25.0, "pokec-s avg degree {avg}");
        let g = dataset("orkut-s", WeightModel::Wc, Scale::Small);
        let avg = g.m() as f64 / g.n() as f64;
        assert!(avg > 50.0 && avg < 90.0, "orkut-s avg degree {avg}");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        dataset("nope", WeightModel::Wc, Scale::Small);
    }

    #[test]
    fn theta_calibration_hits_target() {
        let target = 60.0;
        let theta = calibrate_theta(
            |t| dataset("pokec-s", WeightModel::WcVariant { theta: t }, Scale::Small),
            target,
            7,
        );
        let g = dataset("pokec-s", WeightModel::WcVariant { theta }, Scale::Small);
        let got = avg_rr_size(&g, 400, 8);
        assert!(
            got > target * 0.5 && got < target * 2.0,
            "calibrated θ={theta} gives avg size {got}, wanted ~{target}"
        );
    }

    #[test]
    fn p_calibration_hits_target() {
        let target = 60.0;
        let p = calibrate_p(
            |p| dataset("pokec-s", WeightModel::UniformIc { p }, Scale::Small),
            target,
            9,
        );
        let g = dataset("pokec-s", WeightModel::UniformIc { p }, Scale::Small);
        let got = avg_rr_size(&g, 400, 10);
        assert!(
            got > target * 0.5 && got < target * 2.0,
            "calibrated p={p} gives avg size {got}, wanted ~{target}"
        );
    }
}
