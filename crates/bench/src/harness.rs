//! The figure/table regeneration harness.
//!
//! One function per experiment; each prints the same rows/series the paper
//! reports (see `DESIGN.md` §4 for the experiment index). The
//! `experiments` binary dispatches into these.

use crate::workloads::{calibrated_p_for, calibrated_theta_for, dataset, Scale, DATASETS};
use std::time::{Duration, Instant};
use subsim_core::coverage::{greedy_max_coverage, GreedyConfig};
use subsim_core::{Hist, ImAlgorithm, ImOptions, Imm, OpimC, Ssa};
use subsim_delta::{DeltaIndex, GraphDelta, VersionedGraph};
use subsim_diffusion::forward::{mc_influence, CascadeModel};
use subsim_diffusion::pool::WorkerPool;
use subsim_diffusion::RrCollection;
use subsim_diffusion::{par_generate_chunks_static, RrContext, RrSampler, RrStrategy};
use subsim_graph::{Graph, GraphStats, WeightModel};
use subsim_index::{ConcurrentRrIndex, IndexConfig, RrIndex, SENTINEL_WARMUP_CHUNKS};
use subsim_sampling::rng_from_seed;
use subsim_serve::ShardedDeltaIndex;

/// Repetitions per timing. The paper uses 5 on a large multi-core server;
/// the recorded run used a single-core machine, where repetitions triple
/// wall-clock without changing the order-of-magnitude comparisons, so
/// `Paper` scale uses 1 (medians at `Small` scale still smooth CI noise).
fn reps(scale: Scale) -> usize {
    match scale {
        Scale::Small => 3,
        Scale::Paper => 1,
    }
}

/// Target average RR sizes, scaled to what the graph can express
/// (an RR set cannot exceed `n`; see `DESIGN.md` §3).
pub fn size_targets(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Small => vec![50.0, 200.0, 400.0],
        Scale::Paper => vec![50.0, 400.0, 1000.0, 4000.0],
    }
}

/// The `k` sweep of Figures 1/4/5 (trimmed at `Small` scale).
pub fn k_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![1, 10, 50, 100, 200],
        Scale::Paper => vec![1, 10, 50, 100, 200, 500, 1000, 1500, 2000],
    }
}

/// Runs `alg` `reps` times and returns the median wall-clock seconds.
pub fn time_algorithm(alg: &dyn ImAlgorithm, g: &Graph, opts: &ImOptions, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|r| {
            let o = opts.clone().seed(opts.seed + r as u64);
            let start = Instant::now();
            alg.run(g, &o).expect("algorithm run failed");
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Table 2: dataset summary.
pub fn table2(scale: Scale) {
    header("Table 2: datasets");
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>9}",
        "dataset", "n", "m", "avg-deg", "max-in"
    );
    for name in DATASETS {
        let g = dataset(name, WeightModel::Wc, scale);
        let s = GraphStats::compute(&g);
        println!(
            "{:<14} {:>8} {:>9} {:>9.1} {:>9}",
            name, s.n, s.m, s.avg_degree, s.max_in_degree
        );
    }
}

/// Figure 1: running time under WC, varying `k`, four algorithms.
pub fn fig1(scale: Scale) {
    header("Figure 1: running time (s), WC model, eps=0.1, delta=1/n");
    let algs: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("IMM", Box::new(Imm::vanilla())),
        ("SSA", Box::new(Ssa::vanilla())),
        ("OPIM-C", Box::new(OpimC::vanilla())),
        ("SUBSIM", Box::new(OpimC::subsim())),
    ];
    for name in DATASETS {
        let g = dataset(name, WeightModel::Wc, scale);
        println!("-- {name} (n={}, m={})", g.n(), g.m());
        print!("{:>6}", "k");
        for (label, _) in &algs {
            print!(" {label:>10}");
        }
        println!();
        for k in k_sweep(scale) {
            print!("{k:>6}");
            for (_, alg) in &algs {
                let t = time_algorithm(alg.as_ref(), &g, &ImOptions::new(k).seed(100), reps(scale));
                print!(" {t:>10.3}");
            }
            println!();
        }
    }
}

/// Figure 2: RR-set generation cost under skewed weights, vanilla vs
/// SUBSIM (and the bucket-jump variant as an ablation).
pub fn fig2(scale: Scale) {
    let batch_label = match scale {
        Scale::Small => "2^14",
        Scale::Paper => "2^17",
    };
    header(&format!(
        "Figure 2: RR generation time (s) for {batch_label} sets, skewed weights"
    ));
    let batch = match scale {
        Scale::Small => 1 << 14,
        Scale::Paper => 1 << 17,
    };
    println!(
        "{:<14} {:<12} {:>10} {:>10} {:>10} {:>8}",
        "dataset", "distribution", "vanilla", "subsim", "bucket", "speedup"
    );
    for name in DATASETS {
        for (dist, model) in [
            ("exponential", WeightModel::Exponential { lambda: 1.0 }),
            ("weibull", WeightModel::Weibull),
        ] {
            let g = dataset(name, model, scale);
            let time_gen = |strategy: RrStrategy| {
                let sampler = RrSampler::new(&g, strategy);
                let mut ctx = RrContext::new(g.n());
                let mut rng = rng_from_seed(200);
                let start = Instant::now();
                for _ in 0..batch {
                    sampler.generate(&mut ctx, &mut rng);
                }
                start.elapsed().as_secs_f64()
            };
            let tv = time_gen(RrStrategy::VanillaIc);
            let ts = time_gen(RrStrategy::SubsimIc);
            let tb = time_gen(RrStrategy::SubsimBucketIc);
            println!(
                "{:<14} {:<12} {:>10.3} {:>10.3} {:>10.3} {:>7.1}x",
                name,
                dist,
                tv,
                ts,
                tb,
                tv / ts
            );
        }
    }
}

/// Figures 3(a)/(b): RR-set statistics of HIST vs OPIM-C in the
/// high-influence setting.
pub fn fig3(scale: Scale) {
    header("Figure 3: RR statistics, WC-variant @ largest size target, large k");
    let k = match scale {
        Scale::Small => 100,
        Scale::Paper => 2000,
    };
    let target = *size_targets(scale).last().unwrap();
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "theta", "opim #rr", "hist p1 #rr", "opim avg|R|", "hist avg|R|"
    );
    for name in DATASETS {
        let theta = calibrated_theta_for(name, scale, target);
        let g = dataset(name, WeightModel::WcVariant { theta }, scale);
        let opts = ImOptions::new(k).seed(301);
        let opim = OpimC::subsim().run(&g, &opts).expect("opim");
        let hist = Hist::with_subsim().run(&g, &opts).expect("hist");
        println!(
            "{:<14} {:>10.2} {:>12} {:>12} {:>12.1} {:>12.1}",
            name,
            theta,
            opim.stats.rr_generated,
            hist.stats.phase1_rr,
            opim.stats.avg_rr_size(),
            hist.stats.avg_rr_size(),
        );
    }
}

/// Figure 4: running time vs `k`, WC-variant at the big size target.
pub fn fig4(scale: Scale) {
    header("Figure 4: running time (s) vs k, WC-variant high influence");
    let target = *size_targets(scale).last().unwrap();
    for name in DATASETS {
        let theta = calibrated_theta_for(name, scale, target);
        let g = dataset(name, WeightModel::WcVariant { theta }, scale);
        println!("-- {name} (θ={theta:.2}, avg|R|≈{target})");
        println!(
            "{:>6} {:>10} {:>10} {:>12}",
            "k", "OPIM-C", "HIST", "HIST+SUBSIM"
        );
        for k in k_sweep(scale) {
            let opts = ImOptions::new(k).seed(401);
            let to = time_algorithm(&OpimC::vanilla(), &g, &opts, reps(scale));
            let th = time_algorithm(&Hist::vanilla(), &g, &opts, reps(scale));
            let ths = time_algorithm(&Hist::with_subsim(), &g, &opts, reps(scale));
            println!("{k:>6} {to:>10.3} {th:>10.3} {ths:>12.3}");
        }
    }
}

/// Figure 5: expected influence of the returned seeds vs `k`.
pub fn fig5(scale: Scale) {
    header("Figure 5: expected influence (forward MC) vs k, WC-variant");
    let target = *size_targets(scale).last().unwrap();
    let mc_runs = match scale {
        Scale::Small => 2000,
        Scale::Paper => 300,
    };
    for name in DATASETS {
        let theta = calibrated_theta_for(name, scale, target);
        let g = dataset(name, WeightModel::WcVariant { theta }, scale);
        println!("-- {name}");
        println!("{:>6} {:>14} {:>14}", "k", "HIST+SUBSIM", "OPIM-C");
        for k in k_sweep(scale) {
            let opts = ImOptions::new(k).seed(501);
            let hist = Hist::with_subsim().run(&g, &opts).expect("hist");
            let opim = OpimC::subsim().run(&g, &opts).expect("opim");
            let ih = mc_influence(&g, &hist.seeds, CascadeModel::Ic, mc_runs, 502);
            let io = mc_influence(&g, &opim.seeds, CascadeModel::Ic, mc_runs, 502);
            println!("{k:>6} {ih:>14.1} {io:>14.1}");
        }
    }
}

/// Figure 6: running time vs average RR size (WC-variant), k = 200.
pub fn fig6(scale: Scale) {
    header("Figure 6: running time (s) vs θ-target, WC-variant, k=200");
    let k = match scale {
        Scale::Small => 50,
        Scale::Paper => 200,
    };
    for name in DATASETS {
        println!("-- {name}");
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>12}",
            "avg|R|", "θ", "OPIM-C", "HIST", "HIST+SUBSIM"
        );
        for target in size_targets(scale) {
            let theta = calibrated_theta_for(name, scale, target);
            let g = dataset(name, WeightModel::WcVariant { theta }, scale);
            let opts = ImOptions::new(k).seed(601);
            let to = time_algorithm(&OpimC::vanilla(), &g, &opts, reps(scale));
            let th = time_algorithm(&Hist::vanilla(), &g, &opts, reps(scale));
            let ths = time_algorithm(&Hist::with_subsim(), &g, &opts, reps(scale));
            println!("{target:>10.0} {theta:>10.2} {to:>10.3} {th:>10.3} {ths:>12.3}");
        }
    }
}

/// Figure 7: running time vs average RR size (Uniform IC), k = 200.
pub fn fig7(scale: Scale) {
    header("Figure 7: running time (s) vs p-target, Uniform IC, k=200");
    let k = match scale {
        Scale::Small => 50,
        Scale::Paper => 200,
    };
    for name in DATASETS {
        println!("-- {name}");
        println!(
            "{:>10} {:>12} {:>10} {:>10} {:>12}",
            "avg|R|", "p", "OPIM-C", "HIST", "HIST+SUBSIM"
        );
        for target in size_targets(scale) {
            let p = calibrated_p_for(name, scale, target);
            let g = dataset(name, WeightModel::UniformIc { p }, scale);
            let opts = ImOptions::new(k).seed(701);
            let to = time_algorithm(&OpimC::vanilla(), &g, &opts, reps(scale));
            let th = time_algorithm(&Hist::vanilla(), &g, &opts, reps(scale));
            let ths = time_algorithm(&Hist::with_subsim(), &g, &opts, reps(scale));
            println!("{target:>10.0} {p:>12.6} {to:>10.3} {th:>10.3} {ths:>12.3}");
        }
    }
}

/// Section 3.1 claim: SUBSIM vs vanilla RR generation under WC (the
/// setting of the paper's headline "order of magnitude" generation
/// speedup). Prints time and the edges-examined cost proxy.
pub fn gen_wc(scale: Scale) {
    header("Supplement: WC RR generation, vanilla vs SUBSIM (Section 3.1)");
    let count = match scale {
        Scale::Small => 100_000,
        Scale::Paper => 300_000,
    };
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "dataset", "vanilla (s)", "subsim (s)", "speedup", "vanilla cost", "subsim cost"
    );
    for name in DATASETS {
        let g = dataset(name, WeightModel::Wc, scale);
        let time_and_cost = |strategy: RrStrategy| {
            let sampler = RrSampler::new(&g, strategy);
            let mut ctx = RrContext::new(g.n());
            let mut rng = rng_from_seed(900);
            let start = Instant::now();
            for _ in 0..count {
                sampler.generate(&mut ctx, &mut rng);
            }
            (start.elapsed().as_secs_f64(), ctx.cost)
        };
        let (tv, cv) = time_and_cost(RrStrategy::VanillaIc);
        let (ts, cs) = time_and_cost(RrStrategy::SubsimIc);
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>8.1}x {:>14} {:>14}",
            name,
            tv,
            ts,
            tv / ts,
            cv,
            cs
        );
    }
}

/// Design ablations (`DESIGN.md` §4): sentinel size `b` sweep and the
/// revised-greedy tie-break, in the high-influence setting.
pub fn ablation(scale: Scale) {
    header("Ablation: HIST design choices, WC-variant high influence");
    let k = match scale {
        Scale::Small => 50,
        Scale::Paper => 200,
    };
    let target = *size_targets(scale).last().unwrap();
    let name = "pokec-s";
    let theta = calibrated_theta_for(name, scale, target);
    let g = dataset(name, WeightModel::WcVariant { theta }, scale);
    let opts = ImOptions::new(k).seed(801);

    println!("-- sentinel size b (auto vs forced), {name}, k={k}");
    println!("{:>8} {:>10} {:>12} {:>10}", "b", "time", "avg|R|", "#RR");
    let auto = Hist::with_subsim().run(&g, &opts).expect("hist");
    println!(
        "{:>8} {:>10.3} {:>12.1} {:>10}",
        format!("auto={}", auto.stats.sentinel_size),
        time_algorithm(&Hist::with_subsim(), &g, &opts, reps(scale)),
        auto.stats.avg_rr_size(),
        auto.stats.rr_generated
    );
    for b in [1usize, 4, 16, 64, k] {
        let alg = Hist::with_subsim().force_b(b);
        let res = alg.run(&g, &opts).expect("hist");
        println!(
            "{:>8} {:>10.3} {:>12.1} {:>10}",
            b,
            time_algorithm(&alg, &g, &opts, reps(scale)),
            res.stats.avg_rr_size(),
            res.stats.rr_generated
        );
    }

    println!("-- greedy tie-break (Algorithm 6 vs Algorithm 1), {name}, k={k}");
    for (label, alg) in [
        ("revised (out-degree)", Hist::with_subsim()),
        ("standard", Hist::with_subsim().standard_greedy()),
    ] {
        let res = alg.run(&g, &opts).expect("hist");
        println!(
            "{:<22} time={:.3}s avg|R|={:.1} hits={} b={}",
            label,
            time_algorithm(&alg, &g, &opts, reps(scale)),
            res.stats.avg_rr_size(),
            res.stats.sentinel_hits,
            res.stats.sentinel_size
        );
    }
}

/// The `k` sweep of the index-amortization experiment.
pub fn index_k_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![10, 50, 100],
        Scale::Paper => vec![10, 50, 100, 200, 500],
    }
}

/// Multi-query serving: a warmed [`RrIndex`] vs a fresh OPIM-C run per
/// query, WC model, ε = 0.1. Each `k` is asked twice: the first ("cold")
/// pays whatever pool growth its certificate needs, the second ("warm")
/// is served entirely from the pool — that is the amortized serving cost.
pub fn index_amortization(scale: Scale) {
    header("Index amortization: warm RrIndex query vs fresh OPIM-C, WC, eps=0.1");
    let eps = 0.1;
    for name in DATASETS {
        let g = dataset(name, WeightModel::Wc, scale);
        let delta = 1.0 / g.n() as f64;
        let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(1001));
        println!("-- {name} (n={}, m={})", g.n(), g.m());
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>9} {:>10} {:>10}",
            "k", "fresh (s)", "cold (s)", "warm (s)", "speedup", "ratio", "certified"
        );
        for k in index_k_sweep(scale) {
            let fresh = time_algorithm(
                &OpimC::subsim(),
                &g,
                &ImOptions::new(k).epsilon(eps).delta(delta).seed(1001),
                reps(scale),
            );
            let start = Instant::now();
            index.query(k, eps, delta).expect("cold query");
            let cold = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let warm_ans = index.query(k, eps, delta).expect("warm query");
            let warm = start.elapsed().as_secs_f64();
            assert_eq!(warm_ans.stats.fresh_sets, 0, "warm query regenerated sets");
            println!(
                "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>8.1}x {:>10.4} {:>10}",
                k,
                fresh,
                cold,
                warm,
                fresh / warm.max(1e-9),
                warm_ans.stats.ratio(),
                warm_ans.stats.certified_by_bounds
            );
        }
        let c = index.counters();
        println!(
            "   pool {} sets/half, {} sets generated, cache hit ratio {:.3}",
            index.pool_len(),
            c.rr_sets_generated,
            c.cache_hit_ratio()
        );
    }
}

/// JSON provenance fragment shared by every `bench-pr*` artifact: the
/// core count, worker-thread count, git revision, and process memory
/// watermarks that produced the numbers, so a recorded artifact is
/// never misread across machines (scheduler and shard speedups need
/// real cores to show up, and memory claims need the RSS they were
/// measured at).
///
/// `peak_rss_kb` is the process high-water mark (`VmHWM`) and `rss_kb`
/// the resident size at emission time (`VmRSS`), both from
/// `/proc/self/status`; `heap_kb` is the data+stack segment size
/// (`VmData`), the closest allocator-level figure available without a
/// malloc-stats dependency. On platforms without procfs all three are
/// `null` rather than fabricated.
pub fn provenance(threads: usize) -> String {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    let mem = read_proc_status_kb();
    let field = |v: Option<u64>| v.map_or("null".to_string(), |kb| kb.to_string());
    format!(
        "\"provenance\": {{\"cores\": {cores}, \"threads\": {threads}, \
         \"git_rev\": \"{git_rev}\", \"peak_rss_kb\": {}, \"rss_kb\": {}, \
         \"heap_kb\": {}}}",
        field(mem.peak_rss_kb),
        field(mem.rss_kb),
        field(mem.heap_kb),
    )
}

/// Process memory watermarks parsed from `/proc/self/status`, in kB.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcMemory {
    /// `VmHWM`: peak resident set size.
    pub peak_rss_kb: Option<u64>,
    /// `VmRSS`: resident set size right now.
    pub rss_kb: Option<u64>,
    /// `VmData`: private data segment size (heap + globals).
    pub heap_kb: Option<u64>,
}

/// Reads the `Vm*` lines of `/proc/self/status`. Every field is `None`
/// when the file is absent (non-Linux) or a line fails to parse — the
/// artifact records `null`, never a guessed number.
pub fn read_proc_status_kb() -> ProcMemory {
    let mut mem = ProcMemory::default();
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return mem;
    };
    for line in status.lines() {
        let parse_into = |prefix: &str, slot: &mut Option<u64>| {
            if let Some(rest) = line.strip_prefix(prefix) {
                *slot = rest.trim().trim_end_matches(" kB").trim().parse().ok();
            }
        };
        parse_into("VmHWM:", &mut mem.peak_rss_kb);
        parse_into("VmRSS:", &mut mem.rss_kb);
        parse_into("VmData:", &mut mem.heap_kb);
    }
    mem
}

/// Median of `reps` runs of `f`, in seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// The straggler-free-generation benchmark behind `BENCH_pr3.json`:
/// static vs work-stealing chunk scheduling, sequential vs parallel
/// selection, and warm-query serving latency, all on the skewed WC
/// workload where chunk costs are most uneven. Writes the JSON artifact
/// to `out_path` and prints the same numbers as a table.
///
/// The scheduler comparison is *content-neutral* (both produce the same
/// pool bit for bit — asserted here); only wall-clock may differ, and
/// only on multi-core hosts. `cores` is recorded so single-core CI runs
/// are not misread as a regression.
pub fn bench_pr3(scale: Scale, out_path: &str) {
    header("PR3: work-stealing scheduler + parallel selection");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = 4usize;
    let g = dataset("pokec-s", WeightModel::Wc, scale);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let (chunks, chunk_size) = match scale {
        Scale::Small => (32u64, 128usize),
        Scale::Paper => (64, 512),
    };
    let sets = chunks as usize * chunk_size;
    let r = reps(scale).max(3);

    let t_static = median_secs(r, || {
        let b = par_generate_chunks_static(&sampler, None, 0..chunks, chunk_size, threads, 1100);
        assert_eq!(b.rr.len(), sets);
    });
    // The stealing side runs on a persistent pool, as `subsim-index` does,
    // so it also amortizes thread spawning across batches.
    let pool = WorkerPool::new(threads);
    let t_steal = median_secs(r, || {
        let b = pool.generate_chunks(&sampler, None, 0..chunks, chunk_size, 1100);
        assert_eq!(b.rr.len(), sets);
    });
    let batch = pool.generate_chunks(&sampler, None, 0..chunks, chunk_size, 1100);
    let reference =
        par_generate_chunks_static(&sampler, None, 0..chunks, chunk_size, threads, 1100);
    for i in 0..sets {
        assert_eq!(batch.rr.get(i), reference.rr.get(i), "schedulers diverged");
    }
    let sets_per_sec = sets as f64 / t_steal;

    let k = 50;
    let seq_out = greedy_max_coverage(&batch.rr, &GreedyConfig::standard(k));
    let par_out = greedy_max_coverage(&batch.rr, &GreedyConfig::standard(k).with_threads(threads));
    assert_eq!(seq_out.seeds, par_out.seeds, "parallel selection diverged");
    assert_eq!(seq_out.coverage_upper, par_out.coverage_upper);
    let t_sel_seq = median_secs(r, || {
        greedy_max_coverage(&batch.rr, &GreedyConfig::standard(k));
    });
    let t_sel_par = median_secs(r, || {
        greedy_max_coverage(&batch.rr, &GreedyConfig::standard(k).with_threads(threads));
    });

    // Warm-query latency through the concurrent index: one cold query
    // grows the pool, the warm tail is what a serving deployment sees.
    let index = ConcurrentRrIndex::new(
        &g,
        IndexConfig::new(RrStrategy::SubsimIc)
            .seed(1103)
            .threads(threads),
    );
    let delta = 1.0 / g.n() as f64;
    index.query(k, 0.1, delta).expect("cold query");
    let warm = ConcurrentRrIndex::from_index(index.into_index());
    for _ in 0..40 {
        let ans = warm.query(k, 0.1, delta).expect("warm query");
        assert_eq!(ans.stats.fresh_sets, 0, "warm query regenerated sets");
    }
    let m = warm.metrics();

    println!("cores={cores} threads={threads} sets={sets} (chunks {chunks} x {chunk_size})");
    println!(
        "generation: static {t_static:.4}s, stealing {t_steal:.4}s ({:.2}x), {:.0} sets/s",
        t_static / t_steal.max(1e-12),
        sets_per_sec
    );
    println!(
        "selection (k={k}): sequential {t_sel_seq:.4}s, parallel {t_sel_par:.4}s ({:.2}x)",
        t_sel_seq / t_sel_par.max(1e-12)
    );
    println!(
        "warm query: p50 {}ns, p99 {}ns over {} queries",
        m.latency_p50_ns, m.latency_p99_ns, m.queries
    );

    let json = format!(
        "{{\n  \"bench\": \"pr3_straggler_free_generation\",\n  {},\n  \
         \"cores\": {cores},\n  \
         \"threads\": {threads},\n  \"scale\": \"{scale:?}\",\n  \"sets_per_batch\": {sets},\n  \
         \"batch_wall_clock_static_s\": {t_static:.6},\n  \
         \"batch_wall_clock_stealing_s\": {t_steal:.6},\n  \
         \"scheduler_speedup\": {:.4},\n  \"sets_per_sec_stealing\": {sets_per_sec:.1},\n  \
         \"selection_seq_s\": {t_sel_seq:.6},\n  \"selection_par_s\": {t_sel_par:.6},\n  \
         \"selection_speedup\": {:.4},\n  \"warm_query_p50_ns\": {},\n  \
         \"warm_query_p99_ns\": {},\n  \"warm_queries\": {},\n  \
         \"note\": \"speedups require multiple physical cores; output is bit-identical across schedulers and thread counts by construction\"\n}}\n",
        provenance(threads),
        t_static / t_steal.max(1e-12),
        t_sel_seq / t_sel_par.max(1e-12),
        m.latency_p50_ns,
        m.latency_p99_ns,
        m.queries,
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// Deterministic splitmix64 used to synthesize delta batches without
/// dragging a full RNG crate into the bench surface.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Synthesizes a canonical delta of exactly `ops` edge mutations against
/// `vg`: existing edges alternate delete/reweight, absent edges insert;
/// at most one op per `(u, v)` pair.
fn synth_delta(vg: &VersionedGraph, ops: usize, seed: u64) -> GraphDelta {
    let n = vg.graph().n() as u64;
    let mut state = seed;
    let mut delta = GraphDelta::new();
    let mut touched = std::collections::HashSet::new();
    while delta.len() < ops {
        let u = (splitmix64(&mut state) % n) as u32;
        let v = (splitmix64(&mut state) % n) as u32;
        if u == v || !touched.insert((u, v)) {
            continue;
        }
        let p = (splitmix64(&mut state) % 900 + 50) as f64 / 1000.0;
        delta = if vg.has_edge(u, v) {
            if splitmix64(&mut state) & 1 == 0 {
                delta.delete_edge(u, v)
            } else {
                delta.reweight_edge(u, v, p)
            }
        } else {
            delta.insert_edge(u, v, p)
        };
    }
    delta
}

/// PR 4 artifact: incremental RR-pool repair vs full rebuild across delta
/// batch sizes, on a warmed serving index. Like `bench_pr3` this is
/// explicit-only (never part of `all`) and writes a JSON artifact.
pub fn bench_pr4(scale: Scale, out_path: &str) {
    header("PR4: incremental RR repair vs full rebuild");
    let threads = 4usize;
    let g = dataset("pokec-s", WeightModel::Wc, scale);
    // Chunks are the repair granularity: one dirty set regenerates its
    // whole chunk, so serving pools that expect mutation keep chunks small.
    let (chunks, chunk_size) = match scale {
        Scale::Small => (128u64, 32usize),
        Scale::Paper => (512, 64),
    };
    let sets = chunks as usize * chunk_size;
    let config = IndexConfig::new(RrStrategy::SubsimIc)
        .seed(1201)
        .chunk_size(chunk_size)
        .threads(threads);
    let r = reps(scale).max(3);
    println!(
        "graph n={} m={}, pool {sets} sets/half (chunks {chunks} x {chunk_size}), threads {threads}",
        g.n(),
        g.m()
    );
    println!(
        "{:>9} {:>8} {:>11} {:>10} {:>10} {:>10} {:>8}",
        "delta_ops", "targets", "regenerated", "pool_sets", "repair_s", "rebuild_s", "speedup"
    );

    let fresh_index = || {
        let vg = VersionedGraph::new(g.clone()).expect("versioned graph");
        let mut index = DeltaIndex::from_versioned(vg, config);
        index.warm(sets).expect("warming pool");
        index
    };

    let mut rows = Vec::new();
    for &ops in &[1usize, 4, 16, 64, 256] {
        // Each repetition repairs a fresh copy of the same warmed base, so
        // the median measures one batch applied to the steady state.
        let base = fresh_index();
        let delta = synth_delta(base.versioned(), ops, 0x5eed_0000 + ops as u64);
        drop(base);
        // Time only the batch application: each repetition repairs a fresh
        // copy of the same warmed base (warming stays outside the clock).
        let mut repair_times = Vec::with_capacity(r);
        let mut repaired = None;
        let mut report = None;
        for _ in 0..r {
            let mut index = fresh_index();
            let start = Instant::now();
            let rep = index.apply_delta(&delta).expect("repair");
            repair_times.push(start.elapsed().as_secs_f64());
            report = Some(rep);
            repaired = Some(index);
        }
        repair_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let t_repair = repair_times[repair_times.len() / 2];
        let repaired = repaired.expect("repaired index");
        let report = report.expect("repair report");

        let mut rebuilt = None;
        let t_rebuild = median_secs(r, || {
            let mut vg = VersionedGraph::new(g.clone()).expect("versioned graph");
            vg.apply(&delta).expect("delta applies");
            let mut index = DeltaIndex::from_versioned(vg, config);
            index.warm(sets).expect("rebuild warm");
            rebuilt = Some(index);
        });
        let rebuilt = rebuilt.expect("rebuilt index");

        // The artifact's claim is only honest if repair is exact: the
        // repaired pool must be bit-identical to the rebuilt one.
        assert_eq!(rebuilt.fingerprint(), repaired.fingerprint());
        assert_eq!(rebuilt.pool_len(), repaired.pool_len());
        for i in 0..repaired.pool_len() {
            assert_eq!(
                repaired.selection_pool().get(i),
                rebuilt.selection_pool().get(i),
                "repair diverged from rebuild (r1 set {i})"
            );
            assert_eq!(
                repaired.validation_pool().get(i),
                rebuilt.validation_pool().get(i),
                "repair diverged from rebuild (r2 set {i})"
            );
        }
        assert!(
            ops >= 64 || report.regenerated_sets < report.pool_sets,
            "a {ops}-op delta should not dirty the whole pool \
             ({} of {} sets)",
            report.regenerated_sets,
            report.pool_sets
        );

        let speedup = t_rebuild / t_repair.max(1e-12);
        println!(
            "{:>9} {:>8} {:>11} {:>10} {:>10.4} {:>10.4} {:>7.1}x",
            ops,
            delta.targets().len(),
            report.regenerated_sets,
            report.pool_sets,
            t_repair,
            t_rebuild,
            speedup
        );
        rows.push(format!(
            "    {{\"delta_ops\": {ops}, \"targets\": {}, \"dirty_sets\": {}, \
             \"regenerated_sets\": {}, \"pool_sets\": {}, \"repair_fraction\": {:.6}, \
             \"repair_s\": {t_repair:.6}, \"rebuild_s\": {t_rebuild:.6}, \
             \"speedup\": {speedup:.2}}}",
            delta.targets().len(),
            report.dirty_sets_r1 + report.dirty_sets_r2,
            report.regenerated_sets,
            report.pool_sets,
            report.repair_fraction(),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr4_incremental_rr_repair\",\n  {},\n  \"scale\": \"{scale:?}\",\n  \
         \"dataset\": \"pokec-s\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"pool_sets_per_half\": {sets},\n  \"chunk_size\": {chunk_size},\n  \
         \"threads\": {threads},\n  \"rows\": [\n{}\n  ],\n  \
         \"note\": \"repaired pools asserted bit-identical to a full rebuild at every row; \
         repair cost scales with dirty chunks, not pool size\"\n}}\n",
        provenance(threads),
        g.n(),
        g.m(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// PR 6 artifact: shard-scaling of the sharded serving index behind
/// `BENCH_pr6.json`. For each shard count the pool is warmed, warm-query
/// throughput is measured, and — the honesty condition — every answer
/// and the reassembled union pool are asserted bit-identical to the
/// sequential [`DeltaIndex`] before the row is recorded. Sharding may
/// only buy wall-clock (on multi-core hosts), never change output.
pub fn bench_pr6(scale: Scale, out_path: &str) {
    header("PR6: sharded serving index scaling");
    let threads = 4usize;
    let g = dataset("pokec-s", WeightModel::Wc, scale);
    let (chunks, chunk_size) = match scale {
        Scale::Small => (64u64, 64usize),
        Scale::Paper => (256, 128),
    };
    let sets = chunks as usize * chunk_size;
    let config = IndexConfig::new(RrStrategy::SubsimIc)
        .seed(1301)
        .chunk_size(chunk_size)
        .threads(threads);
    let r = reps(scale).max(3);
    let ks = [10usize, 50];
    let delta_q = 1.0 / g.n() as f64;
    let query_batch = 20usize;

    // The sequential reference: answers and pool the shards must match.
    let mut seq = DeltaIndex::new(g.clone(), config).expect("sequential index");
    seq.warm(sets).expect("warming sequential pool");
    let reference: Vec<_> = ks
        .iter()
        .map(|&k| seq.query(k, 0.1, delta_q).expect("reference query"))
        .collect();

    println!(
        "graph n={} m={}, pool {sets} sets/half (chunks {chunks} x {chunk_size}), threads {threads}",
        g.n(),
        g.m()
    );
    println!(
        "{:>7} {:>10} {:>12} {:>13}",
        "shards", "warm_s", "queries_s", "queries_per_s"
    );

    let mut rows = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let index = ShardedDeltaIndex::new(g.clone(), config, shards).expect("sharded index");
        let warm_start = Instant::now();
        index.warm(sets).expect("warming sharded pool");
        let t_warm = warm_start.elapsed().as_secs_f64();

        // Bit-equality per row: answers and the reassembled union pool
        // must match the sequential reference exactly.
        for (&k, want) in ks.iter().zip(&reference) {
            let got = index.query(k, 0.1, delta_q).expect("sharded query");
            assert_eq!(
                got.seeds, want.seeds,
                "shards={shards} k={k} seeds diverged"
            );
            assert_eq!(
                got.stats.lower_bound, want.stats.lower_bound,
                "shards={shards} k={k} lower bound diverged"
            );
            assert_eq!(
                got.stats.upper_bound, want.stats.upper_bound,
                "shards={shards} k={k} upper bound diverged"
            );
        }
        let snap = index.load();
        let (u1, u2) = snap.union_pools(chunk_size);
        assert_eq!(u1.len(), seq.selection_pool().len(), "shards={shards}");
        for i in 0..u1.len() {
            assert_eq!(
                u1.get(i),
                seq.selection_pool().get(i),
                "shards={shards} r1 set {i} diverged"
            );
            assert_eq!(
                u2.get(i),
                seq.validation_pool().get(i),
                "shards={shards} r2 set {i} diverged"
            );
        }

        let t_query = median_secs(r, || {
            for q in 0..query_batch {
                let k = ks[q % ks.len()];
                index.query(k, 0.1, delta_q).expect("warm query");
            }
        });
        let qps = query_batch as f64 / t_query.max(1e-12);
        println!("{shards:>7} {t_warm:>10.4} {t_query:>12.4} {qps:>13.1}");
        rows.push(format!(
            "    {{\"shards\": {shards}, \"warm_s\": {t_warm:.6}, \
             \"queries_s\": {t_query:.6}, \"queries_per_sec\": {qps:.1}, \
             \"bit_identical_to_sequential\": true}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr6_sharded_serving_scaling\",\n  {},\n  \"scale\": \"{scale:?}\",\n  \
         \"dataset\": \"pokec-s\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"pool_sets_per_half\": {sets},\n  \"chunk_size\": {chunk_size},\n  \
         \"warm_queries_per_row\": {query_batch},\n  \"rows\": [\n{}\n  ],\n  \
         \"note\": \"every row asserts seeds, bounds, and the reassembled union pool \
         bit-identical to the sequential DeltaIndex; shard speedups require multiple \
         physical cores\"\n}}\n",
        provenance(threads),
        g.n(),
        g.m(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// PR 7 artifact: sentinel-truncated RR generation (`BENCH_pr7.json`).
///
/// For each worker-thread count (1, 2, 4, … capped at the host's
/// available cores, so workers map one-to-one onto real cores and are
/// never oversubscribed), the same pool is built twice — plain and with
/// the sentinel tier (HIST Alg 5 stopping) — and the artifact records
/// generation throughput plus the mean RR set size over the
/// post-warmup chunk range, where truncation bites. The witness
/// condition, asserted before the artifact is written: sentinels must
/// reduce the mean stopped-RR size on this high-influence WC workload.
pub fn bench_pr7(scale: Scale, out_path: &str) {
    header("PR7: sentinel-truncated RR generation");
    let g = dataset("pokec-s", WeightModel::Wc, scale);
    let (chunks, chunk_size, budget) = match scale {
        Scale::Small => (64u64, 64usize, 16usize),
        Scale::Paper => (256, 128, 64),
    };
    let sets = chunks as usize * chunk_size;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize];
    while thread_counts.last().is_some_and(|&t| t * 2 <= cores) {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }
    let r = reps(scale).max(3);
    // Truncation starts after the plain warmup prefix in both runs, so
    // the size comparison covers exactly the chunk range where the
    // sentinel wrapper is active.
    let from_sets = SENTINEL_WARMUP_CHUNKS as usize * chunk_size;
    assert!(from_sets < sets, "pool must extend past the warmup prefix");

    println!(
        "graph n={} m={}, pool {sets} sets/half (chunks {chunks} x {chunk_size}), \
         sentinel budget b={budget}, cores {cores}",
        g.n(),
        g.m()
    );
    println!(
        "{:>7} {:>9} {:>10} {:>12} {:>13} {:>9}",
        "threads", "sentinel", "warm_s", "sets_per_s", "mean_rr_size", "hit_rate"
    );

    let mean_tail = |rr: &RrCollection| {
        let nodes: usize = (from_sets..rr.len()).map(|i| rr.get(i).len()).sum();
        nodes as f64 / (rr.len() - from_sets) as f64
    };

    let mut rows = Vec::new();
    let mut witness = (0.0f64, 0.0f64); // (plain, sentinel) tail means
    for &threads in &thread_counts {
        for (slot, &sentinels) in [0usize, budget].iter().enumerate() {
            let config = IndexConfig::new(RrStrategy::SubsimIc)
                .seed(1407)
                .chunk_size(chunk_size)
                .threads(threads)
                .sentinels(sentinels);
            let t_warm = median_secs(r, || {
                let mut index = RrIndex::new(&g, config);
                index.warm(sets).expect("warming pool");
            });
            let sps = (2 * sets) as f64 / t_warm.max(1e-12);
            // One more build for content stats — the pool is a pure
            // function of `(config, size)`, so it is the timed pool.
            let mut index = RrIndex::new(&g, config);
            index.warm(sets).expect("warming pool");
            let hit_rate = index
                .sentinel_state()
                .map_or(0.0, |st| st.hit_rate(chunk_size));
            let (_, r1, r2, _) = index.into_pool_parts();
            let mean_size = (mean_tail(&r1) + mean_tail(&r2)) / 2.0;
            if slot == 0 {
                witness.0 = mean_size;
            } else {
                witness.1 = mean_size;
            }
            let mode = if sentinels > 0 { "on" } else { "off" };
            println!(
                "{threads:>7} {mode:>9} {t_warm:>10.4} {sps:>12.1} {mean_size:>13.2} {hit_rate:>9.3}"
            );
            rows.push(format!(
                "    {{\"threads\": {threads}, \"sentinels\": {sentinels}, \
                 \"warm_s\": {t_warm:.6}, \"sets_per_sec\": {sps:.1}, \
                 \"mean_rr_size_post_warmup\": {mean_size:.4}, \
                 \"sentinel_hit_rate\": {hit_rate:.4}}}"
            ));
        }
    }
    assert!(
        witness.1 < witness.0,
        "sentinel truncation must reduce the mean stopped-RR size: \
         {:.4} (on) vs {:.4} (off)",
        witness.1,
        witness.0
    );
    println!(
        "mean RR size over the truncated range: {:.2} plain -> {:.2} with sentinels ({:.1}% reduction)",
        witness.0,
        witness.1,
        100.0 * (1.0 - witness.1 / witness.0)
    );

    let json = format!(
        "{{\n  \"bench\": \"pr7_sentinel_truncated_generation\",\n  {},\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"pokec-s\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"pool_sets_per_half\": {sets},\n  \"chunk_size\": {chunk_size},\n  \
         \"sentinel_budget\": {budget},\n  \"warmup_sets\": {from_sets},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"note\": \"mean_rr_size_post_warmup covers the chunk range where Alg 5 stopping is \
         active; the artifact is only written after asserting the sentinel-on mean is \
         strictly below plain. thread counts are capped at the host's cores, one worker \
         per core. answers from sentinel pools are certified statistically (see DESIGN.md), \
         not bit-equal to plain pools\"\n}}\n",
        provenance(*thread_counts.last().unwrap()),
        g.n(),
        g.m(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// The flat-frontier kernel benchmark behind `BENCH_pr8.json`: scalar vs
/// frontier RR generation across a thread sweep (1, 2, 4, … up to the
/// host's cores), plus sequential-vs-parallel selection rows on the
/// frontier-generated pool. Writes the JSON artifact to `out_path` and
/// prints the same numbers as a table.
///
/// The two generation paths are *content-neutral* — the frontier kernel
/// is bit-identical to the scalar walk (asserted per thread count here
/// and pinned by `crates/diffusion/tests/frontier.rs`), so only
/// wall-clock differs. At `Small` scale the artifact is only written
/// after asserting the frontier path sustains ≥ 1.25× the scalar
/// sets/sec at every thread count; a single-core host is annotated (the
/// sweep degenerates to `[1]`) so future multi-core runs can witness
/// thread scaling on top of the single-thread kernel win.
pub fn bench_pr8(scale: Scale, out_path: &str) {
    header("PR8: flat-frontier RR generation");
    let g = dataset("pokec-s", WeightModel::Wc, scale);
    let (chunks, chunk_size) = match scale {
        Scale::Small => (32u64, 128usize),
        Scale::Paper => (64, 512),
    };
    let sets = chunks as usize * chunk_size;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize];
    while thread_counts.last().is_some_and(|&t| t * 2 <= cores) {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }
    let r = reps(scale).max(3);
    let k = 50;

    let scalar = RrSampler::scalar(&g, RrStrategy::SubsimIc);
    let frontier = RrSampler::new(&g, RrStrategy::SubsimIc);
    assert!(
        frontier.uses_frontier(),
        "frontier kernel must engage on the bench workload"
    );

    // Per-level width telemetry from one single-threaded pass: how much
    // data-parallelism the level-synchronous kernel actually exposes.
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(1808);
    for _ in 0..sets {
        frontier.generate(&mut ctx, &mut rng);
    }
    let mean_width = ctx.frontier_width_sum as f64 / ctx.frontier_levels.max(1) as f64;
    let levels_per_set = ctx.frontier_levels as f64 / sets as f64;
    let peak_width = ctx.frontier_peak_width;

    println!(
        "graph n={} m={}, pool {sets} sets (chunks {chunks} x {chunk_size}), cores {cores}",
        g.n(),
        g.m()
    );
    println!(
        "frontier telemetry: {levels_per_set:.2} levels/set, mean width {mean_width:.2}, \
         peak width {peak_width}"
    );
    println!(
        "{:>7} {:>10} {:>12} {:>14} {:>16} {:>9} {:>11} {:>11} {:>9}",
        "threads",
        "scalar_s",
        "frontier_s",
        "scalar_sets/s",
        "frontier_sets/s",
        "speedup",
        "sel_seq_s",
        "sel_par_s",
        "sel_x"
    );

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let pool = WorkerPool::new(threads);
        let t_scalar = median_secs(r, || {
            let b = pool.generate_chunks(&scalar, None, 0..chunks, chunk_size, 1800);
            assert_eq!(b.rr.len(), sets);
        });
        let t_frontier = median_secs(r, || {
            let b = pool.generate_chunks(&frontier, None, 0..chunks, chunk_size, 1800);
            assert_eq!(b.rr.len(), sets);
        });
        // Content witness at this thread count: the two paths must agree
        // bit for bit (and on the cost proxy) before their wall-clocks
        // are compared.
        let a = pool.generate_chunks(&scalar, None, 0..chunks, chunk_size, 1800);
        let b = pool.generate_chunks(&frontier, None, 0..chunks, chunk_size, 1800);
        for i in 0..sets {
            assert_eq!(a.rr.get(i), b.rr.get(i), "paths diverged at set {i}");
        }
        assert_eq!(a.cost, b.cost, "cost proxies diverged");
        let sps_scalar = sets as f64 / t_scalar.max(1e-12);
        let sps_frontier = sets as f64 / t_frontier.max(1e-12);
        let speedup = t_scalar / t_frontier.max(1e-12);
        if matches!(scale, Scale::Small) {
            assert!(
                speedup >= 1.25,
                "frontier path must sustain >= 1.25x scalar sets/sec on the \
                 Small rig, got {speedup:.3}x at threads={threads}"
            );
        }

        let seq_out = greedy_max_coverage(&b.rr, &GreedyConfig::standard(k));
        let par_out = greedy_max_coverage(&b.rr, &GreedyConfig::standard(k).with_threads(threads));
        assert_eq!(seq_out.seeds, par_out.seeds, "parallel selection diverged");
        let t_sel_seq = median_secs(r, || {
            greedy_max_coverage(&b.rr, &GreedyConfig::standard(k));
        });
        let t_sel_par = median_secs(r, || {
            greedy_max_coverage(&b.rr, &GreedyConfig::standard(k).with_threads(threads));
        });
        let sel_speedup = t_sel_seq / t_sel_par.max(1e-12);

        println!(
            "{threads:>7} {t_scalar:>10.4} {t_frontier:>12.4} {sps_scalar:>14.1} \
             {sps_frontier:>16.1} {speedup:>9.2} {t_sel_seq:>11.4} {t_sel_par:>11.4} \
             {sel_speedup:>9.2}"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"scalar_s\": {t_scalar:.6}, \
             \"frontier_s\": {t_frontier:.6}, \"scalar_sets_per_sec\": {sps_scalar:.1}, \
             \"frontier_sets_per_sec\": {sps_frontier:.1}, \
             \"frontier_speedup\": {speedup:.4}, \"selection_seq_s\": {t_sel_seq:.6}, \
             \"selection_par_s\": {t_sel_par:.6}, \"selection_speedup\": {sel_speedup:.4}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr8_flat_frontier_generation\",\n  {},\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"pokec-s\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"pool_sets\": {sets},\n  \"chunk_size\": {chunk_size},\n  \
         \"frontier_levels_per_set\": {levels_per_set:.4},\n  \
         \"frontier_mean_width\": {mean_width:.4},\n  \
         \"frontier_peak_width\": {peak_width},\n  \
         \"single_core\": {},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"note\": \"scalar and frontier pools are bit-identical (asserted per row); \
         frontier_speedup is the single-path kernel win at equal thread count, asserted \
         >= 1.25x at Small scale before this artifact is written. {}\"\n}}\n",
        provenance(*thread_counts.last().unwrap()),
        g.n(),
        g.m(),
        cores == 1,
        rows.join(",\n"),
        if cores == 1 {
            "this run was recorded on a single-core host: the thread sweep degenerates to \
             [1] and selection parallelism is clamped to sequential, so thread-scaling \
             rows await a multi-core rerun"
        } else {
            "thread counts are capped at the host's cores, one worker per core"
        },
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// The memory-bounded-serving benchmark behind `BENCH_pr9.json`: exact
/// vs sketched validation pools swept over HLL register precision.
///
/// Selection is exact in both tiers, so at matched pool sizes every
/// sketched seed set must be bit-identical to the exact path — asserted
/// per precision before timing is even reported. The artifact is only
/// written after asserting the sketched tier cuts validation-resident
/// bytes by ≥ 4× at the default precision (8); the certified bounds per
/// precision are recorded so the certificate cost of the slack is
/// visible next to the memory win.
pub fn bench_pr9(scale: Scale, out_path: &str) {
    header("PR9: count-distinct sketched validation pools");
    let g = dataset("pokec-s", WeightModel::Wc, scale);
    // Sketch compression amortizes per-node fixed costs over the sets of
    // one chunk, so it only materializes once a chunk spans far more sets
    // than `n / E|RR|` — the big-validation-pool regime the tier exists
    // for. The bench pins that regime explicitly with large chunks.
    let (warm_sets, chunk_size, threads, k) = match scale {
        Scale::Small => (32768usize, 16384usize, 2usize, 20usize),
        Scale::Paper => (131072, 65536, 4, 50),
    };
    let r = reps(scale).max(3);
    let (epsilon, delta) = (0.15, 0.01);
    let base = IndexConfig::new(RrStrategy::SubsimIc)
        .seed(1909)
        .chunk_size(chunk_size)
        .threads(threads);

    let mut exact = RrIndex::new(&g, base);
    let t_exact_warm = median_secs(1, || exact.warm(warm_sets).expect("exact warm"));
    let want = exact.query(k, epsilon, delta).expect("exact query");
    assert_eq!(
        want.stats.pool_after, warm_sets,
        "exact path must certify at the warm size for the seed comparison"
    );
    let t_exact_query = median_secs(r, || {
        exact.query(k, epsilon, delta).expect("exact query");
    });
    let exact_r2_bytes =
        4 * exact.validation_pool().total_nodes() as u64 + 8 * exact.validation_pool().len() as u64;

    println!(
        "graph n={} m={}, pool {warm_sets} sets/half (chunk {chunk_size}), k={k}, \
         exact R2 {exact_r2_bytes} bytes",
        g.n(),
        g.m()
    );
    println!(
        "{:>9} {:>10} {:>11} {:>13} {:>13} {:>8} {:>10} {:>9}",
        "precision", "warm_s", "query_s", "resident_B", "displaced_B", "ratio", "cert", "seeds=="
    );
    println!(
        "{:>9} {t_exact_warm:>10.4} {t_exact_query:>11.4} {exact_r2_bytes:>13} \
         {exact_r2_bytes:>13} {:>8.2} {:>10} {:>9}",
        "exact", 1.0, want.stats.certified_by_bounds, "-"
    );

    // `subsim_sketch::DEFAULT_PRECISION` — kept literal here so the
    // bench crate does not grow a dependency for one constant.
    let default_precision = 8usize;
    let mut default_compression = 0.0f64;
    let mut rows = Vec::new();
    for precision in [4usize, 6, 8, 10] {
        let mut sketched = RrIndex::new(&g, base.sketch(precision));
        let t_warm = median_secs(1, || sketched.warm(warm_sets).expect("sketched warm"));
        let ans = sketched.query(k, epsilon, delta).expect("sketched query");
        assert_eq!(
            ans.stats.pool_after, warm_sets,
            "p={precision}: sketched path grew past the warm size; the seed \
             comparison needs a matched pool"
        );
        // Seed bit-equality with the exact path — the acceptance gate:
        // sketching the validation tier must not perturb selection.
        assert_eq!(
            ans.seeds, want.seeds,
            "p={precision}: sketched seed set diverged from the exact path"
        );
        let t_query = median_secs(r, || {
            sketched.query(k, epsilon, delta).expect("sketched query");
        });
        let (resident, displaced) = sketched.sketch_bytes();
        assert!(resident > 0, "sketch tier inactive at p={precision}");
        let compression = displaced as f64 / resident as f64;
        if precision == default_precision {
            default_compression = compression;
        }
        println!(
            "{precision:>9} {t_warm:>10.4} {t_query:>11.4} {resident:>13} {displaced:>13} \
             {compression:>8.2} {:>10} {:>9}",
            ans.stats.certified_by_bounds, "yes"
        );
        rows.push(format!(
            "    {{\"precision\": {precision}, \"warm_s\": {t_warm:.6}, \
             \"query_s\": {t_query:.6}, \"resident_bytes\": {resident}, \
             \"displaced_bytes\": {displaced}, \"compression\": {compression:.4}, \
             \"lower_bound\": {:.4}, \"upper_bound\": {:.4}, \
             \"certified\": {}, \"seeds_match_exact\": true}}",
            ans.stats.lower_bound, ans.stats.upper_bound, ans.stats.certified_by_bounds
        ));
    }

    // Acceptance gate: the artifact must not be written unless the
    // default precision actually buys the promised memory reduction.
    assert!(
        default_compression >= 4.0,
        "sketched validation pool must cut resident bytes >= 4x at the default \
         precision ({default_precision}), got {default_compression:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"pr9_sketched_validation_pools\",\n  {},\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"pokec-s\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"pool_sets\": {warm_sets},\n  \"chunk_size\": {chunk_size},\n  \"k\": {k},\n  \
         \"epsilon\": {epsilon},\n  \"exact_warm_s\": {t_exact_warm:.6},\n  \
         \"exact_query_s\": {t_exact_query:.6},\n  \
         \"exact_r2_bytes\": {exact_r2_bytes},\n  \
         \"default_precision\": {default_precision},\n  \
         \"default_compression\": {default_compression:.4},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"note\": \"seed sets are bit-identical to the exact path at every precision \
         (asserted per row before this artifact is written), and the default precision \
         is asserted to cut validation-resident bytes >= 4x; compression is \
         displaced_bytes / resident_bytes, both measured by the sketch itself over the \
         same absorbed RR stream\"\n}}\n",
        provenance(threads),
        g.n(),
        g.m(),
        rows.join(",\n"),
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// The Linear Threshold kernel benchmark behind `BENCH_pr10.json`:
/// scalar vs flat-frontier LT RR generation across a thread sweep, under
/// per-edge (Trivalency) weights so the chain kernel runs its
/// alias-table arm rather than the uniform `gen_range` shortcut.
///
/// The two paths are *content-neutral* — the LT chain kernel consumes
/// the RNG stream bitwise identically to the scalar alias walk (asserted
/// per thread count here and pinned by `crates/diffusion/tests/frontier.rs`
/// and `crates/testkit/tests/lt.rs`) — so only wall-clock differs. At
/// `Small` scale the artifact is only written after asserting the
/// frontier path sustains ≥ 1.2× the scalar sets/sec at every thread
/// count.
pub fn bench_pr10(scale: Scale, out_path: &str) {
    header("PR10: Linear Threshold frontier generation");
    // Re-weight the dataset for the LT rig: harmonic-skew per-edge
    // weights summing to 0.9 per node, so reverse chains run ~10 links
    // deep and every multi-in-degree node samples through a real alias
    // table — the regime the chain kernel exists for. (WC/Trivalency
    // sums leave chains ~2 links deep, where the per-set overhead both
    // paths share hides the kernel comparison entirely.)
    let base = dataset("pokec-s", WeightModel::Wc, scale);
    let mut b = subsim_graph::GraphBuilder::new(base.n());
    for v in 0..base.n() as u32 {
        let nbrs = base.in_neighbors(v);
        let h: f64 = (1..=nbrs.len()).map(|i| 1.0 / i as f64).sum();
        for (i, &u) in nbrs.iter().enumerate() {
            b = b.add_weighted_edge(u, v, 0.9 / ((i + 1) as f64 * h));
        }
    }
    let g = b.build().expect("re-weighted bench graph");
    // LT reverse walks are chains (each node keeps <= 1 live in-edge),
    // so a pool sized like the IC benches finishes in microseconds and
    // timer noise swamps the comparison. The LT rig uses a much deeper
    // pool to push per-rep wall-clock into the stable-measurement
    // regime.
    let (chunks, chunk_size) = match scale {
        Scale::Small => (64u64, 1024usize),
        Scale::Paper => (128, 2048),
    };
    let sets = chunks as usize * chunk_size;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize];
    while thread_counts.last().is_some_and(|&t| t * 2 <= cores) {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }
    let r = reps(scale).max(7);

    let scalar = RrSampler::scalar(&g, RrStrategy::Lt);
    let frontier = RrSampler::new(&g, RrStrategy::Lt);
    assert!(
        frontier.uses_frontier(),
        "LT chain kernel must engage on the bench workload"
    );

    // Chain-shape telemetry from one single-threaded pass: LT reverse
    // walks are chains (each node keeps <= 1 live in-edge), so levels/set
    // doubles as mean chain length before sentinel or cycle cutoff.
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(1810);
    for _ in 0..sets {
        frontier.generate(&mut ctx, &mut rng);
    }
    let links_per_set = ctx.frontier_levels as f64 / sets as f64;

    println!(
        "graph n={} m={} (harmonic skew, Σp=0.9/node), pool {sets} sets \
         (chunks {chunks} x {chunk_size}), cores {cores}",
        g.n(),
        g.m()
    );
    println!("chain telemetry: {links_per_set:.2} reverse links/set");
    println!(
        "{:>7} {:>10} {:>12} {:>14} {:>16} {:>9}",
        "threads", "scalar_s", "frontier_s", "scalar_sets/s", "frontier_sets/s", "speedup"
    );

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let pool = WorkerPool::new(threads);
        // Content witness at this thread count (doubles as warmup): the
        // acceptance gate is meaningless unless the two paths agree bit
        // for bit first.
        let a = pool.generate_chunks(&scalar, None, 0..chunks, chunk_size, 1810);
        let b = pool.generate_chunks(&frontier, None, 0..chunks, chunk_size, 1810);
        for i in 0..sets {
            assert_eq!(a.rr.get(i), b.rr.get(i), "LT paths diverged at set {i}");
        }
        assert_eq!(a.cost, b.cost, "LT cost proxies diverged");
        // Paired rounds: each round times the two paths back to back and
        // contributes one scalar/frontier ratio, so host-speed drift
        // between rounds (the dominant noise on a shared box) cancels
        // out of the gated speedup instead of landing on one side.
        let mut t_s = Vec::with_capacity(r);
        let mut t_f = Vec::with_capacity(r);
        let mut ratios = Vec::with_capacity(r);
        for _ in 0..r {
            let start = Instant::now();
            let b = pool.generate_chunks(&scalar, None, 0..chunks, chunk_size, 1810);
            let s = start.elapsed().as_secs_f64();
            assert_eq!(b.rr.len(), sets);
            let start = Instant::now();
            let b = pool.generate_chunks(&frontier, None, 0..chunks, chunk_size, 1810);
            let f = start.elapsed().as_secs_f64();
            assert_eq!(b.rr.len(), sets);
            t_s.push(s);
            t_f.push(f);
            ratios.push(s / f.max(1e-12));
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let t_scalar = med(&mut t_s);
        let t_frontier = med(&mut t_f);
        let speedup = med(&mut ratios);
        let sps_scalar = sets as f64 / t_scalar.max(1e-12);
        let sps_frontier = sets as f64 / t_frontier.max(1e-12);
        if matches!(scale, Scale::Small) {
            assert!(
                speedup >= 1.2,
                "LT frontier path must sustain >= 1.2x scalar sets/sec on the \
                 Small rig, got {speedup:.3}x at threads={threads}"
            );
        }

        println!(
            "{threads:>7} {t_scalar:>10.4} {t_frontier:>12.4} {sps_scalar:>14.1} \
             {sps_frontier:>16.1} {speedup:>9.2}"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"scalar_s\": {t_scalar:.6}, \
             \"frontier_s\": {t_frontier:.6}, \"scalar_sets_per_sec\": {sps_scalar:.1}, \
             \"frontier_sets_per_sec\": {sps_frontier:.1}, \
             \"lt_speedup\": {speedup:.4}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr10_linear_threshold_frontier\",\n  {},\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"pokec-s\",\n  \
         \"weights\": \"harmonic-skew-0.9\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"pool_sets\": {sets},\n  \"chunk_size\": {chunk_size},\n  \
         \"links_per_set\": {links_per_set:.4},\n  \
         \"single_core\": {},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"note\": \"scalar and frontier LT pools are bit-identical (asserted per row); \
         lt_speedup is the chain-kernel win at equal thread count, asserted >= 1.2x at \
         Small scale before this artifact is written. {}\"\n}}\n",
        provenance(*thread_counts.last().unwrap()),
        g.n(),
        g.m(),
        cores == 1,
        rows.join(",\n"),
        if cores == 1 {
            "this run was recorded on a single-core host: the thread sweep degenerates to \
             [1], so thread-scaling rows await a multi-core rerun"
        } else {
            "thread counts are capped at the host's cores, one worker per core"
        },
    );
    std::fs::write(out_path, json).expect("writing bench artifact");
    println!("wrote {out_path}");
}

/// Sanity line printed by `experiments all` before the figures.
pub fn preamble(scale: Scale) {
    println!("SUBSIM/HIST experiment harness — scale {scale:?}");
    println!("(relative times and orderings are the reproduction target; see EXPERIMENTS.md)");
}

/// Small helper for benches: total wall time of generating `count` sets.
pub fn generation_time(g: &Graph, strategy: RrStrategy, count: usize, seed: u64) -> Duration {
    let sampler = RrSampler::new(g, strategy);
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(seed);
    let start = Instant::now();
    for _ in 0..count {
        sampler.generate(&mut ctx, &mut rng);
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_sorted_and_nonempty() {
        for scale in [Scale::Small, Scale::Paper] {
            let ks = k_sweep(scale);
            assert!(!ks.is_empty());
            assert!(ks.windows(2).all(|w| w[0] < w[1]));
            let ts = size_targets(scale);
            assert!(!ts.is_empty());
            assert!(ts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn time_algorithm_returns_positive_median() {
        let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
        let t = time_algorithm(&OpimC::subsim(), &g, &ImOptions::new(5).seed(1), 3);
        assert!(t > 0.0);
    }

    #[test]
    fn generation_time_measures_something() {
        let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
        let d = generation_time(&g, RrStrategy::SubsimIc, 500, 2);
        assert!(d.as_nanos() > 0);
    }
}
