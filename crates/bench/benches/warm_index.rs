//! Warm-index serving vs fresh OPIM-C: the amortization claim of the
//! `subsim-index` crate, measured per query over the k sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_bench::workloads::{dataset, Scale};
use subsim_core::{ImAlgorithm, ImOptions, OpimC};
use subsim_diffusion::RrStrategy;
use subsim_graph::WeightModel;
use subsim_index::{IndexConfig, RrIndex};

fn bench_warm_index(c: &mut Criterion) {
    let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
    let eps = 0.1;
    let delta = 1.0 / g.n() as f64;
    let ks = [10usize, 50, 100, 200, 500];

    // Warm the pool once with the whole sweep so every benched query is
    // answered without generation.
    let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(77));
    for &k in &ks {
        index.query(k, eps, delta).expect("warm-up query");
    }

    let mut group = c.benchmark_group("multi_query");
    group.sample_size(10);
    for &k in &ks {
        group.bench_with_input(BenchmarkId::new("warm-index", k), &k, |b, &k| {
            b.iter(|| {
                let ans = index.query(k, eps, delta).expect("warm query");
                assert_eq!(ans.stats.fresh_sets, 0, "pool should stay warm");
                black_box(ans)
            })
        });
        group.bench_with_input(BenchmarkId::new("fresh-opimc", k), &k, |b, &k| {
            let opts = ImOptions::new(k).epsilon(eps).delta(delta).seed(77);
            b.iter(|| black_box(OpimC::subsim().run(&g, &opts).expect("opim run")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_warm_index
}
criterion_main!(benches);
