//! Chunk scheduler comparison: retired static block split vs the
//! work-stealing claim counter, on the skewed WC workload where chunk
//! costs are most uneven (hub-rooted RR sets dominate a few chunks).
//!
//! Both schedulers produce bit-identical pools — the only thing under
//! test is wall-clock, i.e. how much of the batch waits on the most
//! loaded worker. Expect parity at 1 thread and on single-core hosts;
//! the stealing win appears with real parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_bench::workloads::{dataset, Scale};
use subsim_diffusion::pool::WorkerPool;
use subsim_diffusion::{par_generate_chunks_static, RrSampler, RrStrategy};
use subsim_graph::WeightModel;

fn bench_scheduler(c: &mut Criterion) {
    let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let (chunks, chunk_size) = (32u64, 64usize);

    let mut group = c.benchmark_group("chunk_scheduler");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("static", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(par_generate_chunks_static(
                        &sampler,
                        None,
                        0..chunks,
                        chunk_size,
                        threads,
                        42,
                    ))
                })
            },
        );
        // The stealing side reuses one persistent pool across iterations,
        // exactly as `subsim-index` growth rounds do.
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("stealing", threads), &threads, |b, _| {
            b.iter(|| black_box(pool.generate_chunks(&sampler, None, 0..chunks, chunk_size, 42)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_scheduler
}
criterion_main!(benches);
