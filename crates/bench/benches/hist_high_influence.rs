//! Figures 4/6/7 microbench: high-influence networks, OPIM-C vs HIST vs
//! HIST+SUBSIM, plus the sentinel-size ablation from `DESIGN.md` §4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_bench::workloads::{dataset, Scale};
use subsim_core::{Hist, ImAlgorithm, ImOptions, OpimC};
use subsim_graph::WeightModel;

fn bench_wc_variant(c: &mut Criterion) {
    // θ = 8 puts the Small-scale pokec-s stand-in deep into the
    // high-influence regime (avg RR size in the hundreds).
    let g = dataset(
        "pokec-s",
        WeightModel::WcVariant { theta: 8.0 },
        Scale::Small,
    );
    let algs: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("opim-c", Box::new(OpimC::vanilla())),
        ("hist", Box::new(Hist::vanilla())),
        ("hist+subsim", Box::new(Hist::with_subsim())),
    ];
    let mut group = c.benchmark_group("high_influence/wc_variant");
    group.sample_size(10);
    for (label, alg) in &algs {
        group.bench_function(*label, |b| {
            let opts = ImOptions::new(50).seed(9);
            b.iter(|| black_box(alg.run(&g, &opts).expect("run")))
        });
    }
    group.finish();
}

fn bench_uniform_ic(c: &mut Criterion) {
    let g = dataset("pokec-s", WeightModel::UniformIc { p: 0.05 }, Scale::Small);
    let algs: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("opim-c", Box::new(OpimC::vanilla())),
        ("hist+subsim", Box::new(Hist::with_subsim())),
    ];
    let mut group = c.benchmark_group("high_influence/uniform_ic");
    group.sample_size(10);
    for (label, alg) in &algs {
        group.bench_function(*label, |b| {
            let opts = ImOptions::new(50).seed(10);
            b.iter(|| black_box(alg.run(&g, &opts).expect("run")))
        });
    }
    group.finish();
}

fn bench_sentinel_size_ablation(c: &mut Criterion) {
    // DESIGN.md §4 ablation: sweep the forced sentinel size b. Too small
    // starves phase-2 truncation; too large inflates phase-1 sampling.
    let g = dataset(
        "pokec-s",
        WeightModel::WcVariant { theta: 8.0 },
        Scale::Small,
    );
    let mut group = c.benchmark_group("high_influence/sentinel_size");
    group.sample_size(10);
    for b_forced in [1usize, 4, 16, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(b_forced),
            &b_forced,
            |bch, &bf| {
                let alg = Hist::with_subsim().force_b(bf);
                let opts = ImOptions::new(50).seed(11);
                bch.iter(|| black_box(alg.run(&g, &opts).expect("run")))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core friendly: short warm-up and measurement windows.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_wc_variant,
    bench_uniform_ic,
    bench_sentinel_size_ablation
}
criterion_main!(benches);
