//! Ablation bench: subset-sampling strategies across `μ = Σp`.
//!
//! Verifies the Lemma 3 / Lemma 5 claims directly: the geometric and
//! bucketed samplers' cost tracks `1 + μ`, while the naive Bernoulli scan
//! stays `O(h)` regardless of `μ`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_sampling::{
    bernoulli_subset_naive, rng_from_seed, uniform_subset, BucketJumpSampler, BucketSubsetSampler,
    SortedSubsetSampler,
};

fn bench_uniform_probs(c: &mut Criterion) {
    let h = 4096usize;
    let mut group = c.benchmark_group("subset/uniform");
    for &p in &[0.5, 0.05, 0.005, 0.0005] {
        let probs = vec![p; h];
        group.bench_with_input(BenchmarkId::new("naive", p), &p, |b, _| {
            let mut rng = rng_from_seed(1);
            b.iter(|| {
                let mut acc = 0usize;
                bernoulli_subset_naive(&mut rng, &probs, |i| acc += i);
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("geometric", p), &p, |b, _| {
            let mut rng = rng_from_seed(2);
            b.iter(|| {
                let mut acc = 0usize;
                uniform_subset(&mut rng, h, p, |i| acc += i);
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_skewed_probs(c: &mut Criterion) {
    let h = 4096usize;
    // Zipf-ish decay: p_i = c / (i + 1), scaled so μ ≈ 1 (the WC regime).
    let raw: Vec<f64> = (0..h).map(|i| 1.0 / (i + 1) as f64).collect();
    let sum: f64 = raw.iter().sum();
    let probs: Vec<f64> = raw.iter().map(|&x| x / sum).collect();
    let bucket = BucketSubsetSampler::new(&probs);
    let jump = BucketJumpSampler::new(&probs);

    let mut group = c.benchmark_group("subset/skewed");
    group.bench_function("naive", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| {
            let mut acc = 0usize;
            bernoulli_subset_naive(&mut rng, &probs, |i| acc += i);
            black_box(acc)
        })
    });
    group.bench_function("sorted-index-free", |b| {
        let mut rng = rng_from_seed(4);
        let sampler = SortedSubsetSampler::new(&probs);
        b.iter(|| {
            let mut acc = 0usize;
            sampler.sample_into(&mut rng, |i| acc += i);
            black_box(acc)
        })
    });
    group.bench_function("bucket", |b| {
        let mut rng = rng_from_seed(5);
        b.iter(|| {
            let mut acc = 0usize;
            bucket.sample_into(&mut rng, |i| acc += i);
            black_box(acc)
        })
    });
    group.bench_function("bucket-jump", |b| {
        let mut rng = rng_from_seed(6);
        b.iter(|| {
            let mut acc = 0usize;
            jump.sample_into(&mut rng, |i| acc += i);
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core friendly: short warm-up and measurement windows.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_uniform_probs, bench_skewed_probs
}
criterion_main!(benches);
