//! Figure 1 microbench: end-to-end IM algorithms under the WC model.
//!
//! Criterion timings at `Small` scale; the `experiments fig1` binary
//! produces the full sweep. Expected ordering: IMM slowest, then SSA,
//! OPIM-C, with SUBSIM (OPIM-C + geometric skips) fastest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_bench::workloads::{dataset, Scale};
use subsim_core::{Hist, ImAlgorithm, ImOptions, Imm, OpimC, Ssa, TimPlus};
use subsim_graph::WeightModel;

fn bench_wc_algorithms(c: &mut Criterion) {
    let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
    let algs: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("tim+", Box::new(TimPlus::vanilla())),
        ("imm", Box::new(Imm::vanilla())),
        ("ssa", Box::new(Ssa::vanilla())),
        ("opim-c", Box::new(OpimC::vanilla())),
        ("subsim", Box::new(OpimC::subsim())),
        ("hist+subsim", Box::new(Hist::with_subsim())),
    ];
    let mut group = c.benchmark_group("algorithms/wc/pokec-s");
    group.sample_size(10);
    for k in [10usize, 50] {
        for (label, alg) in &algs {
            group.bench_with_input(BenchmarkId::new(*label, k), &k, |b, &k| {
                let opts = ImOptions::new(k).seed(7);
                b.iter(|| black_box(alg.run(&g, &opts).expect("run")))
            });
        }
    }
    group.finish();
}

fn bench_lt_algorithms(c: &mut Criterion) {
    let g = dataset("pokec-s", WeightModel::Lt, Scale::Small);
    let mut group = c.benchmark_group("algorithms/lt/pokec-s");
    group.sample_size(10);
    group.bench_function("opim-c-lt/k=10", |b| {
        let opts = ImOptions::new(10).seed(8);
        let alg = OpimC::lt();
        b.iter(|| black_box(alg.run(&g, &opts).expect("run")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core friendly: short warm-up and measurement windows.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_wc_algorithms, bench_lt_algorithms
}
criterion_main!(benches);
