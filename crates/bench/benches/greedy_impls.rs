//! Ablation bench: lazy-heap greedy (with the Eq. 2 bound) vs the bucket
//! greedy the reference C++ implementations use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_bench::workloads::{dataset, Scale};
use subsim_core::coverage::{greedy_max_coverage, greedy_max_coverage_buckets, GreedyConfig};
use subsim_diffusion::{RrCollection, RrContext, RrSampler, RrStrategy};
use subsim_graph::WeightModel;
use subsim_sampling::rng_from_seed;

fn bench_greedy(c: &mut Criterion) {
    let g = dataset("pokec-s", WeightModel::Wc, Scale::Small);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(1);
    let mut rr = RrCollection::new(g.n());
    rr.generate(&sampler, &mut ctx, &mut rng, 50_000);

    let mut group = c.benchmark_group("greedy");
    group.sample_size(10);
    for k in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("heap+bound", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_max_coverage(&rr, &GreedyConfig::standard(k))))
        });
        group.bench_with_input(BenchmarkId::new("heap-no-bound", k), &k, |b, &k| {
            let cfg = GreedyConfig {
                bound_terms: 0,
                ..GreedyConfig::standard(k)
            };
            b.iter(|| black_box(greedy_max_coverage(&rr, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("buckets", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_max_coverage_buckets(&rr, k)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core friendly: short warm-up and measurement windows.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_greedy
}
criterion_main!(benches);
