//! Figure 2 microbench: RR-set generation cost, vanilla vs SUBSIM vs the
//! bucket-jump index, under WC and the skewed (exponential / Weibull)
//! weight distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subsim_bench::workloads::{dataset, Scale};
use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
use subsim_graph::WeightModel;
use subsim_sampling::rng_from_seed;

fn bench_generation(c: &mut Criterion) {
    let cases = [
        ("wc", WeightModel::Wc),
        ("exponential", WeightModel::Exponential { lambda: 1.0 }),
        ("weibull", WeightModel::Weibull),
    ];
    let strategies = [
        ("vanilla", RrStrategy::VanillaIc),
        ("subsim", RrStrategy::SubsimIc),
        ("bucket", RrStrategy::SubsimBucketIc),
    ];
    let mut group = c.benchmark_group("rr_generation/pokec-s");
    for (dist, model) in cases {
        let g = dataset("pokec-s", model, Scale::Small);
        for (label, strategy) in strategies {
            let sampler = RrSampler::new(&g, strategy);
            group.bench_with_input(BenchmarkId::new(dist, label), &strategy, |b, _| {
                let mut ctx = RrContext::new(g.n());
                let mut rng = rng_from_seed(42);
                b.iter(|| black_box(sampler.generate(&mut ctx, &mut rng)))
            });
        }
    }
    group.finish();
}

fn bench_sentinel_truncation(c: &mut Criterion) {
    // Figure 3(b) mechanism: generation cost with and without a sentinel,
    // in a high-influence configuration.
    let g = dataset(
        "pokec-s",
        WeightModel::WcVariant { theta: 8.0 },
        Scale::Small,
    );
    let hub: Vec<u32> = {
        let mut nodes: Vec<u32> = (0..g.n() as u32).collect();
        nodes.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
        nodes.truncate(8);
        nodes
    };
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let mut group = c.benchmark_group("rr_generation/sentinel");
    group.bench_function("no-sentinel", |b| {
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(43);
        b.iter(|| black_box(sampler.generate(&mut ctx, &mut rng)))
    });
    group.bench_function("with-sentinel", |b| {
        let mut ctx = RrContext::new(g.n());
        ctx.set_sentinel(&hub);
        let mut rng = rng_from_seed(44);
        b.iter(|| black_box(sampler.generate(&mut ctx, &mut rng)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core friendly: short warm-up and measurement windows.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_generation, bench_sentinel_truncation
}
criterion_main!(benches);
