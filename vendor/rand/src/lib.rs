//! Offline API-compatible subset of `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements exactly the surface this workspace consumes: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, the [`distributions::Standard`]
//! distribution for the primitive types the samplers draw, integer/float
//! `gen_range`, and [`rngs::SmallRng`] as xoshiro256++ with splitmix64
//! seeding — the same algorithm the real `rand` 0.8 uses on 64-bit
//! targets, so statistical quality matches upstream. Streams are
//! deterministic per seed, which is all the workspace's reproducibility
//! guarantees require (they never depend on upstream's exact bit
//! streams, only on "same seed ⇒ same sequence").

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Distributions over random values.
pub mod distributions {
    use crate::RngCore;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution per type: full range for
    /// integers, `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }

    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    if span == 0 {
                        // Full u64 domain (e.g. 0..u64::MAX wrapped): raw draw.
                        return rng.next_u64() as $t;
                    }
                    // Multiply-shift bounded draw with rejection of the
                    // biased zone (Lemire); unbiased for every span.
                    let zone = span.wrapping_neg() % span;
                    loop {
                        let v = rng.next_u64();
                        let (hi, lo) = {
                            let wide = (v as u128) * (span as u128);
                            ((wide >> 64) as u64, wide as u64)
                        };
                        if lo >= zone || zone == 0 {
                            return self.start.wrapping_add(hi as $t);
                        }
                    }
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start..end + 1).sample_single(rng)
                }
            }
        )*};
    }
    int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! float_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit: $t = Standard.sample(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let unit: $t = Standard.sample(rng);
                    start + unit * (end - start)
                }
            }
        )*};
    }
    float_sample_range!(f32, f64);
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (exclusive or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples one value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded by
    /// splitmix64 — the same construction `rand` 0.8's `SmallRng` uses on
    /// 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any input, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds_without_escaping() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..=6);
            assert!(v == 5 || v == 6);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn trait_object_rng_usable() {
        // The workspace passes `&mut R` with `R: Rng + ?Sized` around.
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
