//! Offline API-compatible subset of `proptest` 1.x (see
//! `vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range and tuple strategies, [`strategy::Just`], `any::<bool>()`,
//! [`collection::vec`], [`prop_oneof!`], and `.prop_map`.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! generated inputs but does not minimize them), and no persistence of
//! failing cases (`proptest-regressions` files are ignored). Case
//! generation is deterministic per test (seeded from the test's module
//! path and name), overridable via `PROPTEST_RNG_SEED`; the case count
//! honors `PROPTEST_CASES`.

/// Test-runner plumbing: config, errors, and the deterministic RNG.
pub mod test_runner {
    /// Mirror of proptest's run configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }

        /// The case count, after applying the `PROPTEST_CASES` override.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count either way.
        Reject(String),
        /// A `prop_assert*!` failed: the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (assume-filtered) case with `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// `Ok(())` to accept a case, `Err` to reject or fail it.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 stream backing all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from the test's fully qualified name (stable
        /// across runs) xor the optional `PROPTEST_RNG_SEED` override.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    h ^= seed;
                }
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates random values of an associated type. Object-safe so
    /// heterogeneous strategies can be boxed (see [`crate::prop_oneof!`]).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// The `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed same-valued strategies (the expansion
    /// of [`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        /// The equally weighted arms; must be non-empty.
        pub arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    if span == 0 {
                        return rng.next_u64() as $t; // full u64-wide domain
                    }
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t; // full domain inclusive
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    start + (rng.next_f64() as $t) * (end - start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support for the primitive types the workspace uses.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_value(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_value(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary_value(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejected})",
                                stringify!($name),
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {msg}",
                            stringify!($name),
                            accepted + 1,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// `assert!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// `assert_ne!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Discards the current case (it counts toward neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            arms: vec![$($crate::strategy::Strategy::boxed($arm)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2i32..9, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..9).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_maps_and_vecs_compose(
            (a, b) in (0u32..10, 10u32..20),
            v in prop::collection::vec(0u8..4, 2..6),
            w in (0usize..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert_eq!(w % 2, 0);
        }

        #[test]
        fn oneof_and_just_and_assume(choice in prop_oneof![Just(1u8), Just(2u8)], x in 0u32..100) {
            prop_assume!(x % 7 != 0);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert_ne!(x % 7, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
