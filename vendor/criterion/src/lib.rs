//! Offline API-compatible subset of `criterion` 0.5 (see
//! `vendor/README.md`).
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros (both the
//! positional and the `name/config/targets` forms).
//!
//! The runner is intentionally simple: each benchmark runs its closure in
//! timed batches for roughly the configured measurement time and reports
//! the best observed per-iteration wall-clock to stdout. No statistics,
//! no HTML reports, no baselines — enough to compile every bench target
//! and get indicative numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor the filter argument `cargo bench -- <filter>` passes.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Sets the default warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the default measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(
            &id.full(None),
            self.filter.as_deref(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
    }
}

/// A named set of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Sets this group's warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets this group's measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(
            &id.full(Some(&self.name)),
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
    }

    /// Benchmarks `f` with `input` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        run_one(
            &id.full(Some(&self.name)),
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b: &mut Bencher| f(b, input),
        );
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full(&self, group: Option<&str>) -> String {
        let mut s = String::new();
        if let Some(g) = group {
            s.push_str(g);
            s.push('/');
        }
        s.push_str(&self.function);
        if let Some(p) = &self.parameter {
            if !self.function.is_empty() {
                s.push('/');
            }
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Hands the benchmark body its timing loop.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    best: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, recording the best per-iteration duration across
    /// batches until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate batch size so one batch is neither trivially short
        // nor longer than the whole budget.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (self.measurement_time.as_nanos() / self.samples.max(1) as u128).max(1);
        let batch = ((per_batch / one.as_nanos().max(1)).clamp(1, 1_000_000)) as u64;

        let deadline = Instant::now() + self.measurement_time;
        let mut total_iters = 1u64;
        let mut best = one;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed() / (batch as u32).max(1);
            if per_iter < best {
                best = per_iter;
            }
            total_iters += batch;
        }
        self.best = Some(best);
        self.iters = total_iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    filter: Option<&str>,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        measurement_time: warm_up, // short throwaway pass to warm caches
        best: None,
        iters: 0,
    };
    f(&mut bencher);
    bencher.measurement_time = measurement;
    bencher.best = None;
    f(&mut bencher);
    match bencher.best {
        Some(best) => println!("{name}: best {best:?}/iter over {} iters", bencher.iters),
        None => println!("{name}: no measurement (bencher.iter never called)"),
    }
}

/// Bundles benchmark functions into a named runner, mirroring criterion's
/// two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).full(Some("g")), "g/f/10");
        assert_eq!(BenchmarkId::from_parameter(5).full(Some("g")), "g/5");
        assert_eq!(BenchmarkId::from("plain").full(None), "plain");
    }

    #[test]
    fn runner_times_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.filter = None;
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
